"""Unit tests for the shard supervisor: backoff, circuit breaker,
rolling restarts.

The supervisor is a pull-model control loop with an injectable clock,
so every schedule here is deterministic: the tests *are* the timeline.
"""

import pytest

from repro import faults, observe
from repro.core.framework import FrameworkConfig
from repro.faults import FaultInjected, FaultPlan, ShardKill
from repro.observe import MetricsRegistry, use_registry
from repro.service import (
    HashRouter,
    PredictionService,
    ShardDown,
    ShardSupervisor,
)
from tests.conftest import make_event

PRECURSOR_A = "KERNEL-N-002"
LOCS = ["R00-M0-N00", "R01-M1-N01", "R02-M0-N03", "R03-M1-N07"]


def fast_config(**overrides):
    return FrameworkConfig(
        initial_train_weeks=2, retrain_weeks=2, **overrides
    )


class FakeClock:
    def __init__(self, start=0.0):
        self.now = start

    def __call__(self):
        return self.now


def durable_service(tmp_path, catalog, shards=2):
    return PredictionService(
        fast_config(),
        router=HashRouter(shards),
        catalog=catalog,
        fleet_dir=tmp_path / "fleet",
        journal_fsync="never",
    )


def seed(service, n=12, start=100.0):
    for i in range(n):
        service.ingest(
            make_event(
                start + i, PRECURSOR_A, location=LOCS[i % 4], record_id=i
            )
        )


def victim_for(service, key):
    """A location the router sends to ``key``."""
    for i in range(256):
        loc = f"R{i:02d}-M0-N{i % 10:02d}"
        if service.router.key(make_event(0.0, location=loc)) == key:
            return loc
    raise AssertionError(f"no location routes to {key}")


def kill_shard(service, key):
    """Crash one shard via fault injection; the service marks it down."""
    at = service._shards[key].routed + 1
    plan = FaultPlan(shard_kills=[ShardKill(shard=key, at_count=at)])
    with faults.install(plan):
        with pytest.raises(FaultInjected):
            service.ingest(
                make_event(
                    999.0, PRECURSOR_A, location=victim_for(service, key)
                )
            )
    assert key in service.down_shards


class TestRestore:
    def test_downed_shard_restored_after_backoff(self, catalog, tmp_path):
        service = durable_service(tmp_path, catalog)
        seed(service)
        clock = FakeClock()
        sup = ShardSupervisor(
            service, backoff_base=1.0, backoff_cap=8.0, clock=clock
        )
        key = service.shard_keys[0]
        kill_shard(service, key)

        # tick 0: crash observed, restore scheduled at +1.0, nothing due
        assert sup.poll() == []
        assert key in service.down_shards
        health = sup.status()[key]
        assert health.state == "down"
        assert health.next_attempt == pytest.approx(1.0)

        # before the backoff expires nothing happens
        clock.now = 0.5
        assert sup.poll() == []
        # at the deadline the shard is restored without operator action
        clock.now = 1.0
        assert sup.poll() == [key]
        assert key not in service.down_shards
        assert sup.status()[key].state == "up"
        assert sup.status()[key].restarts == 1
        service.close()

    def test_restore_failure_backs_off_exponentially(
        self, catalog, tmp_path, monkeypatch
    ):
        service = durable_service(tmp_path, catalog)
        seed(service)
        clock = FakeClock()
        sup = ShardSupervisor(
            service, backoff_base=1.0, backoff_cap=4.0,
            max_restarts=10, clock=clock,
        )
        key = service.shard_keys[0]
        kill_shard(service, key)

        calls = []

        def broken_restore(k):
            calls.append(k)
            raise RuntimeError("disk on fire")

        monkeypatch.setattr(service, "restore_shard", broken_restore)
        sup.poll()  # schedules at +1.0
        deadlines = []
        for _ in range(4):
            entry = sup.status()[key]
            deadlines.append(entry.next_attempt - clock.now)
            clock.now = entry.next_attempt
            sup.poll()
        # 1, 2, 4, then capped at 4
        assert deadlines == [
            pytest.approx(1.0),
            pytest.approx(2.0),
            pytest.approx(4.0),
            pytest.approx(4.0),
        ]
        assert sup.status()[key].last_error == "disk on fire"
        assert len(calls) == 4
        service.close()

    def test_crash_window_resets_consecutive_count(self, catalog, tmp_path):
        service = durable_service(tmp_path, catalog)
        seed(service)
        clock = FakeClock()
        sup = ShardSupervisor(
            service, backoff_base=1.0, crash_window=60.0, clock=clock
        )
        key = service.shard_keys[0]

        kill_shard(service, key)
        sup.poll()
        clock.now = 1.0
        assert sup.poll() == [key]

        # next crash long after the window: consecutive count restarts
        clock.now = 1000.0
        kill_shard(service, key)
        sup.poll()
        assert sup.status()[key].crashes == 1
        assert sup.status()[key].next_attempt == pytest.approx(1001.0)
        service.close()


class TestCircuitBreaker:
    def test_flapping_shard_lands_in_quarantine(self, catalog, tmp_path):
        registry = MetricsRegistry()
        with use_registry(registry):
            service = durable_service(tmp_path, catalog)
            seed(service)
            clock = FakeClock()
            sup = ShardSupervisor(
                service,
                backoff_base=1.0,
                backoff_cap=1.0,
                max_restarts=3,
                crash_window=1e9,
                clock=clock,
            )
            key = service.shard_keys[0]
            kill_shard(service, key)
            # every restore succeeds, but the shard dies again at once
            for _ in range(3):
                sup.poll()
                clock.now = sup.status()[key].next_attempt
                assert sup.poll() == [key]
                kill_shard(service, key)
            # 4th consecutive crash > max_restarts: circuit opens
            sup.poll()
            health = sup.status()[key]
            assert health.state == "quarantined"
            assert health.next_attempt is None
            # no more automatic restores, ever
            clock.now += 1e6
            assert sup.poll() == []
            assert key in service.down_shards
            snapshot = registry.snapshot()
        assert snapshot[f'fleet.quarantines{{shard="{key}"}}']["value"] == 1
        assert snapshot["fleet.quarantined"]["value"] == 1
        service.close()

    def test_release_closes_the_circuit(self, catalog, tmp_path):
        service = durable_service(tmp_path, catalog)
        seed(service)
        clock = FakeClock()
        sup = ShardSupervisor(
            service, backoff_base=1.0, max_restarts=1, clock=clock
        )
        key = service.shard_keys[0]
        sup.quarantine(key)
        kill_shard(service, key)
        assert sup.poll() == []
        assert sup.status()[key].state == "quarantined"

        sup.release(key)
        assert sup.status()[key].crashes == 0
        assert sup.poll() == [key]
        assert sup.status()[key].state == "up"
        service.close()

    def test_events_for_quarantined_shard_fail_typed(self, catalog, tmp_path):
        service = durable_service(tmp_path, catalog)
        seed(service)
        sup = ShardSupervisor(service, clock=FakeClock())
        key = service.shard_keys[0]
        kill_shard(service, key)
        sup.quarantine(key)
        victim = next(
            loc
            for loc in LOCS
            if service.router.key(make_event(0.0, location=loc)) == key
        )
        with pytest.raises(ShardDown):
            service.ingest(
                make_event(2000.0, PRECURSOR_A, location=victim)
            )
        service.close()


class TestRollingRestart:
    def test_restarts_every_up_shard_in_order(self, catalog, tmp_path):
        registry = MetricsRegistry()
        with use_registry(registry):
            service = durable_service(tmp_path, catalog)
            seed(service)
            sup = ShardSupervisor(service, clock=FakeClock())
            before = {
                k: service.session(k).n_ingested
                for k in service.shard_keys
            }
            restarted = sup.rolling_restart()
            assert restarted == service.shard_keys
            assert not service.down_shards
            after = {
                k: service.session(k).n_ingested
                for k in service.shard_keys
            }
            snapshot = registry.snapshot()
        assert after == before
        for key in restarted:
            assert (
                snapshot[f'fleet.rolling_restarts{{shard="{key}"}}']["value"]
                == 1
            )
        service.close()

    def test_skips_down_and_quarantined(self, catalog, tmp_path):
        service = durable_service(tmp_path, catalog, shards=3)
        for i in range(24):
            service.ingest(
                make_event(
                    100.0 + i,
                    PRECURSOR_A,
                    location=f"R{i % 8:02d}-M0-N00",
                    record_id=i,
                )
            )
        sup = ShardSupervisor(service, clock=FakeClock())
        down_key = service.shard_keys[0]
        quarantined_key = service.shard_keys[1]
        kill_shard(service, down_key)
        sup.quarantine(quarantined_key)
        plan = sup.restart_plan()
        assert down_key not in plan
        assert quarantined_key not in plan
        assert sup.rolling_restart() == plan
        service.close()

    def test_restart_continues_ingesting_after(self, catalog, tmp_path):
        service = durable_service(tmp_path, catalog)
        seed(service)
        sup = ShardSupervisor(service, clock=FakeClock())
        sup.rolling_restart()
        seed(service, start=500.0)  # the stream continues post-restart
        assert service.n_ingested == 24
        service.close()
