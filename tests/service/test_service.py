"""Unit tests for the fleet-level prediction service."""

import json

import pytest

from repro import faults, observe
from repro.core.framework import FrameworkConfig
from repro.faults import FaultInjected, FaultPlan, ShardKill
from repro.parallel.executor import ThreadExecutor
from repro.resilience import CheckpointError
from repro.service import PredictionService, ShardDown
from repro.service.service import (
    MANIFEST_FORMAT,
    MANIFEST_NAME,
    SHARD_META_NAME,
    _slug,
)
from repro.utils.timeutil import WEEK_SECONDS
from tests.conftest import make_event

PRECURSOR_A = "KERNEL-N-002"
PRECURSOR_B = "KERNEL-N-003"
FATAL = "KERNEL-F-000"

LOCS = ["R00-M0-N00", "R01-M1-N01", "R02-M0-N03"]


def fast_config(**overrides):
    return FrameworkConfig(
        initial_train_weeks=2, retrain_weeks=2, **overrides
    )


def fleet_events(weeks=6, locations=LOCS):
    """Interleaved per-location pattern streams, globally time-sorted."""
    events = []
    rid = 0
    for offset, location in enumerate(locations):
        t = 600.0 + offset * 37.0
        while t + 120.0 < weeks * WEEK_SECONDS:
            for dt, code in (
                (0.0, PRECURSOR_A),
                (60.0, PRECURSOR_B),
                (120.0, FATAL),
            ):
                events.append(
                    make_event(t + dt, code, location=location, record_id=rid)
                )
                rid += 1
            t += 10_800.0
    events.sort(key=lambda e: (e.timestamp, e.record_id))
    return events


def stream(service, events):
    for event in events:
        service.ingest(event)
    service.flush()
    return service


class TestRoutingAndLifecycle:
    def test_shards_created_lazily_per_location(self, catalog):
        service = PredictionService(fast_config(), catalog=catalog)
        assert service.shard_keys == []
        service.ingest(make_event(100.0, PRECURSOR_A, location=LOCS[0]))
        service.ingest(make_event(200.0, PRECURSOR_A, location=LOCS[1]))
        service.ingest(make_event(300.0, PRECURSOR_B, location=LOCS[0]))
        assert service.shard_keys == LOCS[:2]
        assert service.n_ingested == 3
        assert service.session(LOCS[0]).n_ingested == 2

    def test_warnings_come_from_the_owning_shard(self, catalog):
        service = stream(
            PredictionService(fast_config(), catalog=catalog), fleet_events()
        )
        summary = service.summary()
        assert set(summary.shards) == set(LOCS)
        for key in LOCS:
            assert service.warnings(key) == service.session(key).warnings
            assert all(w in service.session(key).warnings
                       for w in service.warnings(key))
        assert summary.n_events == len(fleet_events())
        assert summary.n_warnings > 0
        assert summary.precision > 0.9
        assert summary.n_retrains == sum(
            len(s.retrains) for s in summary.shards.values()
        )

    def test_hash_routing_folds_locations(self, catalog):
        service = stream(
            PredictionService(fast_config(), catalog=catalog, shards=2),
            fleet_events(weeks=3),
        )
        assert set(service.shard_keys) <= {"shard-000", "shard-001"}
        assert service.summary().n_events == len(fleet_events(weeks=3))

    def test_shared_executor_not_closed_unless_owned(self, catalog):
        executor = ThreadExecutor(max_workers=2)
        try:
            with PredictionService(
                fast_config(), catalog=catalog, executor=executor
            ) as service:
                stream(service, fleet_events(weeks=3))
                for key in service.shard_keys:
                    assert service.session(key).meta.executor is executor
            # not owned: still usable after the service closes
            assert executor.map(len, [[1, 2]]) == [2]
        finally:
            executor.close()

    def test_metered_per_shard_series(self, catalog):
        registry = observe.MetricsRegistry()
        with observe.use_registry(registry):
            stream(
                PredictionService(fast_config(), catalog=catalog),
                fleet_events(weeks=3),
            )
        for key in LOCS:
            assert registry.counter("service.events", shard=key).value > 0
            assert registry.histogram("service.ingest", shard=key).count > 0
        assert registry.gauge("service.shards").value == len(LOCS)


class TestFleetDurability:
    def test_layout_and_manifest(self, catalog, tmp_path):
        fleet = tmp_path / "fleet"
        service = PredictionService(
            fast_config(), catalog=catalog, fleet_dir=fleet, journal_fsync="never"
        )
        stream(service, fleet_events(weeks=3))
        manifest = service.checkpoint()
        service.close()

        assert manifest["format"] == MANIFEST_FORMAT
        on_disk = json.loads((fleet / MANIFEST_NAME).read_text())
        assert on_disk == manifest
        assert [s["key"] for s in on_disk["shards"]] == LOCS
        for entry in on_disk["shards"]:
            shard_dir = fleet / entry["dir"]
            assert (shard_dir / SHARD_META_NAME).exists()
            assert (shard_dir / "checkpoint.json").exists()
            assert (shard_dir / "journal").is_dir()
            meta = json.loads((shard_dir / SHARD_META_NAME).read_text())
            assert meta["key"] == entry["key"]

    def test_recover_restores_every_shard(self, catalog, tmp_path):
        fleet = tmp_path / "fleet"
        events = fleet_events()
        reference = stream(
            PredictionService(fast_config(), catalog=catalog), events
        )

        service = PredictionService(
            fast_config(), catalog=catalog, fleet_dir=fleet, journal_fsync="never"
        )
        cut = len(events) // 2
        for event in events[:cut]:
            service.ingest(event)
        service.checkpoint()
        # more events after the checkpoint: covered by the journals only
        for event in events[cut : cut + 40]:
            service.ingest(event)
        service.close()  # crash here

        recovered = PredictionService.recover(
            fleet, catalog=catalog, journal_fsync="never"
        )
        assert set(recovered.shard_keys) == set(LOCS)
        assert recovered.n_ingested == cut + 40
        # re-deliver the tail each shard has not seen, per shard
        skipped = {k: recovered.session(k).n_ingested for k in recovered.shard_keys}
        for event in events:
            key = recovered.router.key(event)
            if skipped.get(key, 0) > 0:
                skipped[key] -= 1
                continue
            recovered.ingest(event)
        recovered.flush()
        for key in LOCS:
            assert recovered.session(key).warnings == reference.session(key).warnings
        recovered.close()

    def test_manifest_written_eagerly_on_shard_birth(self, catalog, tmp_path):
        """The fleet is recoverable before its first checkpoint: the
        manifest (config + router) lands at construction and is
        refreshed on every shard birth."""
        fleet = tmp_path / "fleet"
        service = PredictionService(
            fast_config(), catalog=catalog, fleet_dir=fleet, journal_fsync="never"
        )
        manifest = json.loads((fleet / MANIFEST_NAME).read_text())
        assert manifest["shards"] == []
        service.ingest(make_event(100.0, PRECURSOR_A, location=LOCS[0]))
        manifest = json.loads((fleet / MANIFEST_NAME).read_text())
        assert [s["key"] for s in manifest["shards"]] == [LOCS[0]]
        service.close()

        recovered = PredictionService.recover(
            fleet, catalog=catalog, journal_fsync="never"
        )
        assert recovered.config.initial_train_weeks == 2
        assert recovered.session(LOCS[0]).n_ingested == 1
        recovered.close()

    def test_recover_finds_shard_missing_from_manifest(self, catalog, tmp_path):
        """A crash can land between a shard's directory creation and the
        manifest refresh; the shard's shard.json + journal are on disk,
        so the directory scan must pick it up anyway."""
        fleet = tmp_path / "fleet"
        service = PredictionService(
            fast_config(), catalog=catalog, fleet_dir=fleet, journal_fsync="never"
        )
        service.ingest(make_event(100.0, PRECURSOR_A, location=LOCS[0]))
        service.ingest(make_event(200.0, PRECURSOR_A, location=LOCS[1]))
        service.close()

        # simulate the crash window: the manifest never saw LOCS[1]
        manifest_path = fleet / MANIFEST_NAME
        manifest = json.loads(manifest_path.read_text())
        manifest["shards"] = [
            s for s in manifest["shards"] if s["key"] != LOCS[1]
        ]
        manifest_path.write_text(json.dumps(manifest))

        recovered = PredictionService.recover(
            fleet, catalog=catalog, journal_fsync="never"
        )
        assert set(recovered.shard_keys) == {LOCS[0], LOCS[1]}
        assert recovered.session(LOCS[1]).n_ingested == 1
        recovered.close()

    def test_recover_restores_router_and_config(self, catalog, tmp_path):
        fleet = tmp_path / "fleet"
        service = PredictionService(
            fast_config(), catalog=catalog, shards=2, fleet_dir=fleet,
            journal_fsync="never",
        )
        stream(service, fleet_events(weeks=3))
        service.checkpoint()
        service.close()

        recovered = PredictionService.recover(
            fleet, catalog=catalog, journal_fsync="never"
        )
        assert recovered.router == service.router
        assert recovered.config.initial_train_weeks == 2
        recovered.close()

    def test_recover_rejects_mismatched_config(self, catalog, tmp_path):
        fleet = tmp_path / "fleet"
        service = PredictionService(
            fast_config(), catalog=catalog, fleet_dir=fleet, journal_fsync="never"
        )
        service.ingest(make_event(100.0, PRECURSOR_A))
        service.checkpoint()
        service.close()
        with pytest.raises(CheckpointError, match="digest mismatch"):
            PredictionService.recover(
                fleet, FrameworkConfig(initial_train_weeks=9), catalog=catalog
            )

    def test_checkpoint_without_fleet_dir_rejected(self, catalog):
        service = PredictionService(fast_config(), catalog=catalog)
        with pytest.raises(ValueError, match="fleet directory"):
            service.checkpoint()

    def test_recover_empty_dir_is_a_fresh_service(self, catalog, tmp_path):
        service = PredictionService.recover(
            tmp_path / "nothing", catalog=catalog
        )
        assert service.shard_keys == []

    def test_slug_sanitizes(self):
        assert _slug("R01-M0/N04 x") == "R01-M0_N04_x"
        assert _slug("///") == "shard"


class TestShardIsolation:
    def test_kill_marks_only_the_victim_down(self, catalog, tmp_path):
        fleet = tmp_path / "fleet"
        events = fleet_events()
        victim = LOCS[1]
        plan = FaultPlan(shard_kills=[ShardKill(shard=victim, at_count=30)])
        service = PredictionService(
            fast_config(), catalog=catalog, fleet_dir=fleet, journal_fsync="never"
        )
        survivors_before = 0
        with faults.install(plan):
            with pytest.raises(FaultInjected):
                for event in events:
                    service.ingest(event)
            assert service.down_shards == {victim}
            for event in events:
                if service.router.key(event) == victim:
                    with pytest.raises(ShardDown) as exc_info:
                        service.ingest(event)
                    assert exc_info.value.key == victim
                    break
            # the other shards keep serving: deliver them their tails
            skipped = {
                k: service.session(k).n_ingested for k in service.shard_keys
            }
            for event in events:
                key = service.router.key(event)
                if key == victim:
                    continue
                if skipped.get(key, 0) > 0:
                    skipped[key] -= 1
                    continue
                service.ingest(event)
                survivors_before += 1
        assert survivors_before > 0
        assert plan.injected == [f"shard:{victim}:30"]
        service.close()

    def test_restore_shard_resumes_from_its_journal(self, catalog, tmp_path):
        """Acceptance scenario: kill one shard mid-run, restore it, and
        the fleet finishes with warnings identical to an uninterrupted
        run — for the victim and the survivors alike."""
        fleet = tmp_path / "fleet"
        events = fleet_events()
        reference = stream(
            PredictionService(fast_config(), catalog=catalog), events
        )

        victim = LOCS[1]
        plan = FaultPlan(shard_kills=[ShardKill(shard=victim, at_count=40)])
        service = PredictionService(
            fast_config(), catalog=catalog, fleet_dir=fleet, journal_fsync="never"
        )
        with faults.install(plan):
            for event in events:
                try:
                    service.ingest(event)
                except FaultInjected:
                    # restore and re-deliver: nothing accepted was lost,
                    # the killed event itself was never durable
                    service.restore_shard(victim)
                    service.ingest(event)
        service.flush()

        for key in LOCS:
            assert service.session(key).warnings == reference.session(key).warnings
        ours, theirs = service.summary(), reference.summary()
        assert (ours.n_events, ours.n_warnings) == (
            theirs.n_events,
            theirs.n_warnings,
        )
        service.close()

    def test_restore_without_fleet_dir_rejected(self, catalog):
        victim = LOCS[0]
        plan = FaultPlan(shard_kills=[ShardKill(shard=victim, at_count=1)])
        service = PredictionService(fast_config(), catalog=catalog)
        with faults.install(plan):
            with pytest.raises(FaultInjected):
                service.ingest(make_event(100.0, PRECURSOR_A, location=victim))
        with pytest.raises(ValueError, match="fleet directory"):
            service.restore_shard(victim)

    def test_advance_and_flush_skip_down_shards(self, catalog, tmp_path):
        victim = LOCS[0]
        plan = FaultPlan(shard_kills=[ShardKill(shard=victim, at_count=2)])
        service = PredictionService(
            fast_config(), catalog=catalog, fleet_dir=tmp_path / "fleet",
            journal_fsync="never",
        )
        with faults.install(plan):
            service.ingest(make_event(100.0, PRECURSOR_A, location=victim))
            service.ingest(make_event(110.0, PRECURSOR_A, location=LOCS[1]))
            with pytest.raises(FaultInjected):
                service.ingest(make_event(120.0, PRECURSOR_B, location=victim))
        assert service.advance(500.0) == []
        assert service.flush() == []
        assert service.session(LOCS[1]).core.last_time == 500.0
        assert service.session(victim).core.last_time == 100.0
        service.close()
