"""Batched fleet ingest and the idempotent-close lifecycle contract."""

import pytest

from repro import faults
from repro.faults import FaultInjected, FaultPlan, ShardKill
from repro.service import PredictionService, ShardDown
from tests.conftest import make_event
from tests.service.test_service import (
    LOCS,
    fast_config,
    fleet_events,
)


def batched(events, size):
    for i in range(0, len(events), size):
        yield events[i : i + size]


class TestIngestBatch:
    def test_matches_per_event_ingest(self, catalog):
        events = fleet_events()
        reference = PredictionService(fast_config(), catalog=catalog)
        for event in events:
            reference.ingest(event)
        reference.flush()

        service = PredictionService(fast_config(), catalog=catalog)
        for chunk in batched(events, 64):
            service.ingest_batch(chunk)
        service.flush()

        assert service.n_ingested == reference.n_ingested
        for key in reference.shard_keys:
            assert service.warnings(key) == reference.warnings(key), key
        service.close()
        reference.close()

    def test_batch_spanning_shards_routes_each_event(self, catalog):
        service = PredictionService(fast_config(), catalog=catalog)
        service.ingest_batch(
            [
                make_event(100.0, "KERNEL-N-002", location=LOCS[0]),
                make_event(200.0, "KERNEL-N-002", location=LOCS[1]),
                make_event(300.0, "KERNEL-N-003", location=LOCS[0]),
            ]
        )
        assert service.session(LOCS[0]).n_ingested == 2
        assert service.session(LOCS[1]).n_ingested == 1
        service.close()

    def test_empty_batch_is_a_no_op(self, catalog):
        service = PredictionService(fast_config(), catalog=catalog)
        assert service.ingest_batch([]) == []
        assert service.shard_keys == []
        service.close()

    def test_down_shard_rejects_whole_batch_atomically(self, catalog, tmp_path):
        service = PredictionService(
            fast_config(), catalog=catalog, fleet_dir=tmp_path / "fleet"
        )
        plan = FaultPlan(shard_kills=[ShardKill(shard=LOCS[0], at_count=1)])
        with faults.install(plan):
            with pytest.raises(FaultInjected):
                service.ingest(make_event(100.0, "KERNEL-N-002", location=LOCS[0]))
        assert service.down_shards == {LOCS[0]}

        batch = [
            make_event(200.0, "KERNEL-N-002", location=LOCS[1]),
            make_event(300.0, "KERNEL-N-002", location=LOCS[0]),
        ]
        with pytest.raises(ShardDown):
            service.ingest_batch(batch)
        # nothing from the batch was applied anywhere — not even to the
        # healthy shard listed before the down one
        assert LOCS[1] not in service.shard_keys
        service.close()

    def test_mid_batch_fault_isolates_to_its_shard(self, catalog, tmp_path):
        service = PredictionService(
            fast_config(), catalog=catalog, fleet_dir=tmp_path / "fleet"
        )
        plan = FaultPlan(shard_kills=[ShardKill(shard=LOCS[0], at_count=2)])
        batch = [
            make_event(100.0, "KERNEL-N-002", location=LOCS[0]),
            make_event(160.0, "KERNEL-N-003", location=LOCS[0]),
            make_event(200.0, "KERNEL-N-002", location=LOCS[1]),
        ]
        with faults.install(plan):
            with pytest.raises(FaultInjected):
                service.ingest_batch(batch)
        assert service.down_shards == {LOCS[0]}
        # the victim shard is down; others keep serving
        service.ingest(make_event(300.0, "KERNEL-N-002", location=LOCS[1]))
        with pytest.raises(ShardDown):
            service.ingest(make_event(400.0, "KERNEL-N-002", location=LOCS[0]))
        service.close()


class TestCloseLifecycle:
    def test_close_is_idempotent(self, catalog):
        service = PredictionService(fast_config(), catalog=catalog)
        service.ingest(make_event(100.0, "KERNEL-N-002"))
        assert not service.closed
        service.close()
        assert service.closed
        service.close()  # second close must be a no-op, not an error
        assert service.closed

    def test_use_after_close_is_rejected(self, catalog):
        service = PredictionService(fast_config(), catalog=catalog)
        service.close()
        with pytest.raises(RuntimeError):
            service.ingest(make_event(100.0, "KERNEL-N-002"))
        with pytest.raises(RuntimeError):
            service.ingest_batch([make_event(100.0, "KERNEL-N-002")])
        with pytest.raises(RuntimeError):
            service.advance(1000.0)
        with pytest.raises(RuntimeError):
            service.flush()

    def test_context_manager_closes(self, catalog):
        with PredictionService(fast_config(), catalog=catalog) as service:
            service.ingest(make_event(100.0, "KERNEL-N-002"))
        assert service.closed
