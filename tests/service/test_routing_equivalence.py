"""Routing equivalence: a sharded fleet == N independent sessions.

The service's core correctness claim is that sharding is *transparent*:
streaming a multi-location log through a location-sharded
:class:`PredictionService` produces, per location, exactly the warnings,
retrains and accounting of an independent single-session run over that
location's sub-stream.  The pattern streams here span several retraining
boundaries, so the equivalence covers rule-set replacement mid-stream,
not just the initial training.
"""

import pytest

from repro.core.framework import FrameworkConfig
from repro.core.online import OnlinePredictionSession
from repro.service import PredictionService
from repro.utils.timeutil import WEEK_SECONDS
from tests.conftest import make_event

PRECURSOR_A = "KERNEL-N-002"
PRECURSOR_B = "KERNEL-N-003"
FATAL = "KERNEL-F-000"

LOCS = ["R00-M0-N00", "R01-M1-N01", "R02-M0-N03", "R03-M1-N07"]


def fast_config():
    return FrameworkConfig(initial_train_weeks=2, retrain_weeks=2)


def fleet_events(weeks=8, locations=LOCS):
    """Per-location precursor->fatal streams with staggered phases,
    interleaved into one globally time-sorted fleet log."""
    events = []
    rid = 0
    for offset, location in enumerate(locations):
        t = 600.0 + offset * 1_753.0  # stagger so merges interleave
        period = 10_800.0 + offset * 600.0
        while t + 120.0 < weeks * WEEK_SECONDS:
            for dt, code in (
                (0.0, PRECURSOR_A),
                (60.0, PRECURSOR_B),
                (120.0, FATAL),
            ):
                events.append(
                    make_event(t + dt, code, location=location, record_id=rid)
                )
                rid += 1
            t += period
    events.sort(key=lambda e: (e.timestamp, e.record_id))
    return events


@pytest.fixture(scope="module")
def independent_runs(catalog):
    """One OnlinePredictionSession per location over its own sub-stream."""
    events = fleet_events()
    sessions = {}
    for location in LOCS:
        session = OnlinePredictionSession(fast_config(), catalog=catalog)
        for event in events:
            if event.location == location:
                session.ingest(event)
        sessions[location] = session
    return events, sessions


class TestRoutingEquivalence:
    def test_location_sharding_matches_independent_sessions(
        self, catalog, independent_runs
    ):
        events, independent = independent_runs
        service = PredictionService(fast_config(), catalog=catalog)
        for event in events:
            service.ingest(event)
        service.flush()

        assert set(service.shard_keys) == set(LOCS)
        for location in LOCS:
            expected = independent[location]
            actual = service.session(location)
            # warning-for-warning, across retraining boundaries
            assert actual.warnings == expected.warnings
            assert [r.week for r in actual.retrains] == [
                r.week for r in expected.retrains
            ]
            assert len(expected.retrains) >= 2  # boundaries were crossed
            ours, theirs = actual.summary(), expected.summary()
            assert (ours.n_events, ours.n_fatal, ours.n_warnings) == (
                theirs.n_events,
                theirs.n_fatal,
                theirs.n_warnings,
            )
            assert ours.precision == theirs.precision
            assert ours.recall == theirs.recall

    def test_fleet_aggregates_sum_the_independent_runs(
        self, catalog, independent_runs
    ):
        events, independent = independent_runs
        service = PredictionService(fast_config(), catalog=catalog)
        for event in events:
            service.ingest(event)
        service.flush()
        summary = service.summary()
        assert summary.n_events == len(events)
        assert summary.n_warnings == sum(
            len(s.warnings) for s in independent.values()
        )
        assert summary.true_positives == sum(
            s.summary().matching.true_positives for s in independent.values()
        )

    def test_hash_sharding_is_also_equivalent_per_stream(self, catalog):
        """Hash routing groups several locations per shard; each shard's
        session must equal an independent session over exactly that
        shard's merged sub-stream."""
        events = fleet_events(weeks=6)
        service = PredictionService(fast_config(), catalog=catalog, shards=2)
        for event in events:
            service.ingest(event)
        service.flush()

        for key in service.shard_keys:
            expected = OnlinePredictionSession(fast_config(), catalog=catalog)
            for event in events:
                if service.router.key(event) == key:
                    expected.ingest(event)
            assert service.session(key).warnings == expected.warnings
