"""Unit tests for live resharding: split, merge, and their refusals.

The equivalence yardstick everywhere: a resharded fleet must produce
warnings identical to a fleet *born* with the resulting topology, and
an interrupted migration must recover to the same place.  Chaos-grade
kill-at-every-step coverage lives in ``tests/test_chaos_reshard.py``.
"""

import json

import pytest

from repro.core.framework import FrameworkConfig
from repro.service import (
    FleetRouter,
    HashRouter,
    PredictionService,
    ReshardError,
    RoutingRule,
)
from repro.service.service import MANIFEST_NAME
from repro.utils.timeutil import WEEK_SECONDS
from tests.conftest import make_event

PRECURSOR_A = "KERNEL-N-002"
PRECURSOR_B = "KERNEL-N-003"
FATAL = "KERNEL-F-000"

LOCS = [
    "R00-M0-N00",
    "R01-M1-N01",
    "R02-M0-N03",
    "R03-M1-N07",
    "R04-M0-N09",
]


def fast_config(**overrides):
    return FrameworkConfig(
        initial_train_weeks=2, retrain_weeks=2, **overrides
    )


def fleet_events(weeks=6, locations=LOCS):
    """Interleaved per-location pattern streams, globally time-sorted."""
    events = []
    for offset, location in enumerate(locations):
        t = 600.0 + offset * 37.0
        while t + 900.0 < weeks * WEEK_SECONDS:
            for dt, code in (
                (0.0, PRECURSOR_A),
                (200.0, PRECURSOR_B),
                (900.0, FATAL),
            ):
                events.append(make_event(t + dt, code, location=location))
            t += 10_800.0
    events.sort(key=lambda e: e.timestamp)
    return [
        make_event(
            e.timestamp,
            e.entry_data,
            severity=e.severity,
            location=e.location,
            record_id=i,
        )
        for i, e in enumerate(events)
    ]


def durable_service(tmp_path, catalog, name="fleet", shards=2, **kwargs):
    return PredictionService(
        fast_config(),
        router=HashRouter(shards),
        catalog=catalog,
        fleet_dir=tmp_path / name,
        journal_fsync="never",
        retain_journals=True,
        **kwargs,
    )


def warnings_by_shard(service):
    return {k: service.warnings(k) for k in service.shard_keys}


class TestSplit:
    def test_split_matches_born_split_fleet(self, catalog, tmp_path):
        events = fleet_events()
        half = len(events) // 2
        service = durable_service(tmp_path, catalog)
        for event in events[:half]:
            service.ingest(event)
        targets = service.split_shard("shard-000", 2)
        assert targets == ["shard-000/0", "shard-000/1"]
        assert service.epoch == 1
        for event in events[half:]:
            service.ingest(event)
        service.flush()

        rule = RoutingRule(
            kind="split", sources=("shard-000",), targets=tuple(targets)
        )
        reference = PredictionService(
            fast_config(),
            router=FleetRouter(HashRouter(2), (rule,)),
            catalog=catalog,
        )
        for event in events:
            reference.ingest(event)
        reference.flush()
        for key in reference.shard_keys:
            assert service.warnings(key) == reference.warnings(key)
        service.close()
        reference.close()

    def test_split_shard_dirs_and_manifest(self, catalog, tmp_path):
        events = fleet_events(weeks=3)
        service = durable_service(tmp_path, catalog)
        for event in events:
            service.ingest(event)
        service.split_shard("shard-001", 2)
        manifest = json.loads(
            (tmp_path / "fleet" / MANIFEST_NAME).read_text()
        )
        assert manifest["epoch"] == 1
        assert manifest["migration"] is None
        keys = {entry["key"] for entry in manifest["shards"]}
        assert "shard-001" not in keys
        assert keys >= {"shard-001/0", "shard-001/1"} or (
            # children that received no replayed events are lazily
            # created later, matching a born-with-topology fleet
            len(keys & {"shard-001/0", "shard-001/1"}) >= 1
        )
        assert manifest["router"]["rules"][0]["kind"] == "split"
        # retired source directory is gone
        dirs = {entry["dir"] for entry in manifest["shards"]}
        assert not any("001-shard-001" in d for d in dirs)
        service.close()

    def test_recover_after_split_continues(self, catalog, tmp_path):
        events = fleet_events()
        half = len(events) // 2
        service = durable_service(tmp_path, catalog)
        for event in events[:half]:
            service.ingest(event)
        service.split_shard("shard-000", 2)
        service.checkpoint()
        service.close()

        recovered = PredictionService.recover(
            tmp_path / "fleet", fast_config(), catalog=catalog
        )
        assert recovered.epoch == 1
        # the checkpoint restored exactly events[:half]; resume the
        # stream from there — warnings ledgers survive the checkpoint,
        # so the comparison below is over the FULL history
        assert recovered.n_ingested == half
        for event in events[half:]:
            recovered.ingest(event)
        recovered.flush()

        rule = recovered.router.rules[0]
        reference = PredictionService(
            fast_config(),
            router=FleetRouter(HashRouter(2), (rule,)),
            catalog=catalog,
        )
        for event in events:
            reference.ingest(event)
        reference.flush()
        for key in reference.shard_keys:
            assert recovered.warnings(key) == reference.warnings(key)
        recovered.close()
        reference.close()


class TestMerge:
    def test_merge_matches_born_merged_fleet(self, catalog, tmp_path):
        events = fleet_events()
        half = len(events) // 2
        service = durable_service(tmp_path, catalog, shards=3)
        for event in events[:half]:
            service.ingest(event)
        target = service.merge_shards(["shard-000", "shard-002"])
        assert target == "merged-001"
        assert service.epoch == 1
        for event in events[half:]:
            service.ingest(event)
        service.flush()

        rule = RoutingRule(
            kind="merge",
            sources=("shard-000", "shard-002"),
            targets=(target,),
        )
        reference = PredictionService(
            fast_config(),
            router=FleetRouter(HashRouter(3), (rule,)),
            catalog=catalog,
        )
        for event in events:
            reference.ingest(event)
        reference.flush()
        for key in reference.shard_keys:
            assert service.warnings(key) == reference.warnings(key)
        service.close()
        reference.close()

    def test_merge_custom_target_key(self, catalog, tmp_path):
        events = fleet_events(weeks=3)
        service = durable_service(tmp_path, catalog, shards=3)
        for event in events:
            service.ingest(event)
        target = service.merge_shards(
            ["shard-000", "shard-001"], target="cold"
        )
        assert target == "cold"
        assert "cold" in service.shard_keys
        service.close()

    def test_merge_requires_zero_reorder_slack(self, catalog, tmp_path):
        service = PredictionService(
            fast_config(reorder_slack=4),
            router=HashRouter(2),
            catalog=catalog,
            fleet_dir=tmp_path / "fleet",
            journal_fsync="never",
            retain_journals=True,
        )
        for event in fleet_events(weeks=3):
            service.ingest(event)
        with pytest.raises(ReshardError, match="reorder"):
            service.merge_shards(["shard-000", "shard-001"])
        service.close()


class TestRefusals:
    def test_unknown_shard(self, catalog, tmp_path):
        service = durable_service(tmp_path, catalog)
        service.ingest(make_event(100.0, PRECURSOR_A, location=LOCS[0]))
        with pytest.raises(ReshardError, match="unknown shard"):
            service.split_shard("nope", 2)
        service.close()

    def test_split_needs_two_parts(self, catalog, tmp_path):
        service = durable_service(tmp_path, catalog)
        service.ingest(make_event(100.0, PRECURSOR_A, location=LOCS[0]))
        key = service.shard_keys[0]
        with pytest.raises(ReshardError, match="parts"):
            service.split_shard(key, 1)
        service.close()

    def test_merge_needs_two_distinct_sources(self, catalog, tmp_path):
        service = durable_service(tmp_path, catalog)
        for event in fleet_events(weeks=3):
            service.ingest(event)
        with pytest.raises(ReshardError):
            service.merge_shards(["shard-000"])
        with pytest.raises(ReshardError):
            service.merge_shards(["shard-000", "shard-000"])
        service.close()

    def test_compacted_journal_refused_with_guidance(self, catalog, tmp_path):
        """Without retain_journals the checkpoint compacts the journal,
        so the full-replay precondition fails loudly, not corruptly."""
        service = PredictionService(
            fast_config(),
            router=HashRouter(2),
            catalog=catalog,
            fleet_dir=tmp_path / "fleet",
            journal_fsync="never",
        )
        events = fleet_events(weeks=3)
        service.ingest(events[0])
        # Tiny segments so this small stream actually rotates — at the
        # default 4 MiB a short test journal is one segment and
        # checkpoint compaction (whole trailing segments only) keeps it
        # intact from record 0.
        for key in service.shard_keys:
            service.session(key).journal.segment_bytes = 256
        for event in events[1:]:
            service.ingest(event)
        service.checkpoint()
        with pytest.raises(ReshardError, match="retain_journals"):
            service.split_shard("shard-000", 2)
        service.close()

    def test_requires_fleet_dir(self, catalog):
        service = PredictionService(
            fast_config(), router=HashRouter(2), catalog=catalog
        )
        service.ingest(make_event(100.0, PRECURSOR_A, location=LOCS[0]))
        with pytest.raises(ValueError, match="fleet directory"):
            service.split_shard(service.shard_keys[0], 2)
        service.close()


class TestManifestCompat:
    def test_v1_manifest_still_readable(self, catalog, tmp_path):
        """A pre-epoch manifest (version 1, no epoch/migration/
        retain_journals keys) recovers as an epoch-0 fleet."""
        events = fleet_events(weeks=3)
        service = durable_service(tmp_path, catalog)
        for event in events:
            service.ingest(event)
        service.checkpoint()
        service.close()

        path = tmp_path / "fleet" / MANIFEST_NAME
        manifest = json.loads(path.read_text())
        manifest["version"] = 1
        for key in ("epoch", "migration", "retain_journals"):
            manifest.pop(key, None)
        manifest["router"].pop("rules", None)
        path.write_text(json.dumps(manifest))

        recovered = PredictionService.recover(
            tmp_path / "fleet", fast_config(), catalog=catalog
        )
        assert recovered.epoch == 0
        assert recovered.n_ingested == len(events)
        recovered.close()
