"""Unit and property tests for rule / repository persistence."""

import io
import json

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.knowledge import KnowledgeRepository, RuleRecord
from repro.core.serialization import (
    FORMAT_VERSION,
    dump_repository,
    load_repository,
    record_from_dict,
    record_to_dict,
    rule_from_dict,
    rule_to_dict,
)
from repro.learners.rules import (
    AssociationRule,
    CountRule,
    DistributionRule,
    StatisticalRule,
)

SAMPLES = [
    AssociationRule(
        antecedent=frozenset({"KERNEL-N-001", "KERNEL-N-002"}),
        consequent="KERNEL-F-000",
        support=0.25,
        confidence=0.9,
    ),
    StatisticalRule(k=4, window=300.0, probability=0.99),
    DistributionRule(
        distribution="weibull",
        params=(0.507936, 19984.8),
        threshold=0.6,
        quantile_time=20000.0,
    ),
    CountRule(
        code="KERNEL-N-007",
        count=5,
        window=300.0,
        consequent="KERNEL-F-003",
        support=0.1,
        confidence=0.4,
    ),
]


class TestRuleRoundTrip:
    @pytest.mark.parametrize("rule", SAMPLES, ids=lambda r: r.kind)
    def test_round_trip(self, rule):
        again = rule_from_dict(rule_to_dict(rule))
        assert again == rule
        assert again.key == rule.key

    @pytest.mark.parametrize("rule", SAMPLES, ids=lambda r: r.kind)
    def test_json_serializable(self, rule):
        text = json.dumps(rule_to_dict(rule))
        assert rule_from_dict(json.loads(text)) == rule

    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown rule kind"):
            rule_from_dict({"kind": "oracle"})

    def test_missing_kind(self):
        with pytest.raises(ValueError, match="kind"):
            rule_from_dict({})

    def test_unsupported_type(self):
        with pytest.raises(TypeError):
            rule_to_dict("not a rule")


class TestRecordRoundTrip:
    def test_with_scores(self):
        record = RuleRecord(
            rule=SAMPLES[0], learner="association", trained_at_week=26
        ).with_scores(tp=5, fp=2, fn=1, roc=0.95)
        again = record_from_dict(record_to_dict(record))
        assert again == record

    def test_missing_scores_default(self):
        data = record_to_dict(
            RuleRecord(rule=SAMPLES[1], learner="statistical", trained_at_week=0)
        )
        del data["scores"]
        again = record_from_dict(data)
        assert again.tp == 0 and again.roc == 0.0


class TestRepositoryRoundTrip:
    def make_repo(self):
        return KnowledgeRepository(
            [
                RuleRecord(rule=r, learner=r.kind, trained_at_week=4)
                for r in SAMPLES
            ]
        )

    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "rules.json"
        repo = self.make_repo()
        dump_repository(repo, path)
        loaded = load_repository(path)
        assert loaded.keys() == repo.keys()
        assert [r.rule for r in loaded.records()] == [
            r.rule for r in repo.records()
        ]

    def test_stream_round_trip(self):
        buf = io.StringIO()
        dump_repository(self.make_repo(), buf)
        buf.seek(0)
        assert len(load_repository(buf)) == len(SAMPLES)

    def test_version_checked(self):
        payload = {"format_version": 99, "records": []}
        with pytest.raises(ValueError, match="format version"):
            load_repository(io.StringIO(json.dumps(payload)))

    def test_count_consistency_checked(self):
        buf = io.StringIO()
        dump_repository(self.make_repo(), buf)
        payload = json.loads(buf.getvalue())
        payload["n_rules"] = 999
        with pytest.raises(ValueError, match="inconsistent"):
            load_repository(io.StringIO(json.dumps(payload)))

    def test_empty_repository(self, tmp_path):
        path = tmp_path / "empty.json"
        dump_repository(KnowledgeRepository(), path)
        assert len(load_repository(path)) == 0

    def test_format_version_current(self):
        assert FORMAT_VERSION == 1


class TestPropertyRoundTrip:
    @given(
        st.integers(min_value=1, max_value=20),
        st.floats(min_value=1.0, max_value=1e5, allow_nan=False),
        st.floats(min_value=0.01, max_value=1.0, allow_nan=False),
    )
    def test_statistical_any_values(self, k, window, probability):
        rule = StatisticalRule(k=k, window=window, probability=probability)
        assert rule_from_dict(rule_to_dict(rule)) == rule

    @given(
        st.sets(st.sampled_from([f"C{i}" for i in range(8)]), min_size=1),
        st.floats(min_value=0.01, max_value=1.0),
        st.floats(min_value=0.01, max_value=1.0),
    )
    def test_association_any_values(self, antecedent, support, confidence):
        rule = AssociationRule(
            antecedent=frozenset(antecedent),
            consequent="F",
            support=support,
            confidence=confidence,
        )
        assert rule_from_dict(rule_to_dict(rule)) == rule
