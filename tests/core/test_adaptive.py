"""Tests for adaptive prediction-window tuning."""

import pytest

from repro.core.adaptive import (
    AdaptiveWindowFramework,
    AdaptiveWindowTuner,
    TuningDecision,
)
from repro.core.framework import FrameworkConfig
from repro.core.meta import MetaLearner
from repro.core.reviser import Reviser
from repro.raslog.store import EventLog


class TestTunerValidation:
    def test_needs_two_candidates(self):
        with pytest.raises(ValueError, match="at least two"):
            AdaptiveWindowTuner(candidates=(300.0,))

    def test_candidates_ascending(self):
        with pytest.raises(ValueError, match="ascending"):
            AdaptiveWindowTuner(candidates=(900.0, 300.0))

    def test_validation_fraction_bounds(self):
        with pytest.raises(ValueError, match="validation_fraction"):
            AdaptiveWindowTuner(validation_fraction=0.0)
        with pytest.raises(ValueError, match="validation_fraction"):
            AdaptiveWindowTuner(validation_fraction=1.0)

    def test_tolerance_non_negative(self):
        with pytest.raises(ValueError, match="tolerance"):
            AdaptiveWindowTuner(tolerance=-0.1)


class TestChoose:
    def test_scores_all_candidates(self, mid_trace):
        tuner = AdaptiveWindowTuner(candidates=(300.0, 3600.0))
        meta = MetaLearner(catalog=mid_trace.catalog)
        reviser = Reviser(catalog=mid_trace.catalog)
        decision = tuner.choose(
            26,
            mid_trace.clean.slice_weeks(0, 26),
            meta,
            reviser,
            mid_trace.catalog,
        )
        assert isinstance(decision, TuningDecision)
        assert set(decision.scores) == {300.0, 3600.0}
        assert decision.chosen in (300.0, 3600.0)
        for p, r, f1 in decision.scores.values():
            assert 0.0 <= p <= 1.0
            assert 0.0 <= r <= 1.0
            assert 0.0 <= f1 <= 1.0

    def test_prefers_smallest_near_best(self, mid_trace):
        # with an enormous tolerance every candidate is "near best", so
        # the smallest window must win
        tuner = AdaptiveWindowTuner(candidates=(300.0, 3600.0), tolerance=1.0)
        meta = MetaLearner(catalog=mid_trace.catalog)
        reviser = Reviser(catalog=mid_trace.catalog)
        decision = tuner.choose(
            26,
            mid_trace.clean.slice_weeks(0, 26),
            meta,
            reviser,
            mid_trace.catalog,
        )
        assert decision.chosen == 300.0

    def test_empty_training_defaults_to_smallest(self, catalog):
        tuner = AdaptiveWindowTuner(candidates=(300.0, 900.0))
        meta = MetaLearner(catalog=catalog)
        reviser = Reviser(catalog=catalog)
        decision = tuner.choose(0, EventLog(), meta, reviser, catalog)
        assert decision.chosen == 300.0
        assert decision.scores == {}


class TestAdaptiveFramework:
    def test_tunes_at_each_retraining(self, mid_trace):
        config = FrameworkConfig(initial_train_weeks=20, retrain_weeks=8)
        framework = AdaptiveWindowFramework(
            config,
            catalog=mid_trace.catalog,
            tuner=AdaptiveWindowTuner(candidates=(300.0, 1800.0)),
        )
        result = framework.run(mid_trace.clean, end_week=36)
        assert len(framework.decisions) == len(result.retrains)
        for decision in framework.decisions:
            assert decision.chosen in (300.0, 1800.0)
        # warnings carry the window that was active when they fired
        windows = {w.window for w in result.warnings}
        chosen = {d.chosen for d in framework.decisions}
        assert windows <= chosen | {
            w.window for w in result.warnings if w.learner == "distribution"
        }

    def test_produces_reasonable_accuracy(self, mid_trace):
        config = FrameworkConfig(initial_train_weeks=20, retrain_weeks=8)
        framework = AdaptiveWindowFramework(config, catalog=mid_trace.catalog)
        result = framework.run(mid_trace.clean, end_week=36)
        assert result.overall.precision > 0.4
        assert result.overall.recall > 0.3
