"""Per-rule window semantics and scan/compiled index equivalence.

Regression tests for two families of behavior:

* count and statistical rules carry their *own* mined ``window`` — the
  matcher must threshold occurrences by ``now - t <= rule.window``, not
  by whatever happens to remain in the Wp-bounded deques (the old code
  counted the whole deque, firing rules whose burst was long over);
* the compiled hash-joined matching indices are a pure speed knob —
  warning-for-warning identical to the legacy ``"scan"`` matcher,
  including across snapshot/restore.
"""

import random

import pytest

from repro.core.predictor import Predictor
from repro.learners.rules import (
    ANY_FAILURE,
    AssociationRule,
    CountRule,
    StatisticalRule,
)
from repro.raslog.events import Severity
from tests.conftest import make_event

FATAL = "KERNEL-F-000"
FATAL2 = "KERNEL-F-001"
W1, W2, W3 = "KERNEL-N-002", "KERNEL-N-003", "KERNEL-N-004"

MODES = ("scan", "compiled")


def assoc(antecedent, consequent=FATAL):
    return AssociationRule(
        antecedent=frozenset(antecedent),
        consequent=consequent,
        support=0.1,
        confidence=0.9,
    )


def stat(k, window=300.0):
    return StatisticalRule(k=k, window=window, probability=0.9)


def count_rule(code=W1, count=3, window=60.0, consequent=FATAL):
    return CountRule(
        code=code,
        count=count,
        window=window,
        consequent=consequent,
        support=0.1,
        confidence=0.9,
    )


def fatal_event(t, code=FATAL):
    return make_event(t, code, severity=Severity.FATAL)


def warn_event(t, code=W1):
    return make_event(t, code, severity=Severity.WARNING)


@pytest.mark.parametrize("indexing", MODES)
class TestCountRuleWindow:
    """A count rule's own window bounds its counting, not Wp."""

    def test_spread_occurrences_do_not_fire(self, catalog, indexing):
        # 3 occurrences inside Wp=300 but never 3 inside the rule's 60 s.
        p = Predictor(
            [count_rule(count=3, window=60.0)], 300.0, catalog,
            indexing=indexing,
        )
        warnings = []
        for t in (0.0, 100.0, 200.0):
            warnings += p.observe(warn_event(t))
        assert warnings == []

    def test_burst_within_rule_window_fires(self, catalog, indexing):
        p = Predictor(
            [count_rule(count=3, window=60.0)], 300.0, catalog,
            indexing=indexing,
        )
        warnings = []
        for t in (0.0, 20.0, 40.0):
            warnings += p.observe(warn_event(t))
        assert [w.predicted for w in warnings] == [FATAL]
        assert warnings[0].time == 40.0

    def test_stale_head_then_fresh_burst(self, catalog, indexing):
        # An old occurrence still inside Wp must not pad the rule count.
        p = Predictor(
            [count_rule(count=3, window=60.0)], 300.0, catalog,
            indexing=indexing,
        )
        warnings = []
        for t in (0.0, 250.0, 270.0):
            warnings += p.observe(warn_event(t))
        assert warnings == []
        # ... but completing the burst inside the rule window fires.
        warnings += p.observe(warn_event(290.0))
        assert [w.predicted for w in warnings] == [FATAL]


@pytest.mark.parametrize("indexing", MODES)
class TestStatisticalRuleWindow:
    def test_spread_failures_do_not_fire(self, catalog, indexing):
        # 2 fatals inside Wp=300 but 200 s apart: a k=2/60 s rule stays
        # silent (the old matcher counted the whole recent_fatals deque).
        p = Predictor(
            [stat(2, window=60.0)], 300.0, catalog, indexing=indexing
        )
        warnings = []
        for t in (0.0, 200.0):
            warnings += p.observe(fatal_event(t))
        assert warnings == []

    def test_burst_within_rule_window_fires(self, catalog, indexing):
        p = Predictor(
            [stat(2, window=60.0)], 300.0, catalog, indexing=indexing
        )
        warnings = []
        for t in (0.0, 30.0):
            warnings += p.observe(fatal_event(t))
        assert [w.predicted for w in warnings] == [ANY_FAILURE]

    def test_most_specific_k_wins(self, catalog, indexing):
        # Both k=2/300s and k=3/60s hold: the larger satisfied k is the
        # expert that fires.
        p = Predictor(
            [stat(2, window=300.0), stat(3, window=60.0)],
            300.0,
            catalog,
            indexing=indexing,
            refractory=0.0,
        )
        warnings = []
        for t in (0.0, 20.0, 40.0):
            warnings += p.observe(fatal_event(t))
        assert warnings[-1].rule_key == ("stat", 3, 60.0)


RULES = [
    assoc({W1, W2}),
    assoc({W1}, consequent=FATAL2),
    assoc({W2, W3}, consequent=FATAL2),
    stat(2, window=80.0),
    stat(3, window=300.0),
    count_rule(code=W3, count=3, window=120.0),
]


def _random_stream(seed, n=400):
    rng = random.Random(seed)
    codes = [W1, W2, W3, "KERNEL-N-005", FATAL, FATAL2]
    weights = [5, 4, 6, 8, 2, 1]
    t = 0.0
    events = []
    for _ in range(n):
        t += rng.choice((1.0, 5.0, 30.0, 200.0))
        code = rng.choices(codes, weights)[0]
        severity = (
            Severity.FATAL if code in (FATAL, FATAL2) else Severity.WARNING
        )
        events.append(make_event(t, code, severity=severity))
    return events


class TestScanCompiledEquivalence:
    """The compiled indices must be warning-for-warning invisible."""

    @pytest.mark.parametrize("seed", range(5))
    def test_identical_warning_stream(self, catalog, seed):
        scan = Predictor(RULES, 300.0, catalog, indexing="scan")
        compiled = Predictor(RULES, 300.0, catalog, indexing="compiled")
        for event in _random_stream(seed):
            assert compiled.observe(event) == scan.observe(event)

    def test_equivalence_across_snapshot_restore(self, catalog):
        scan = Predictor(RULES, 300.0, catalog, indexing="scan")
        compiled = Predictor(RULES, 300.0, catalog, indexing="compiled")
        stream = _random_stream(99)
        for event in stream[:200]:
            assert compiled.observe(event) == scan.observe(event)
        # Restore a fresh compiled predictor mid-stream: the derived
        # tracking (occurrence counts, per-code deques) must be rebuilt
        # from the snapshot, not lost.
        resumed = Predictor(RULES, 300.0, catalog, indexing="compiled")
        resumed.restore_state(compiled.state_snapshot())
        for event in stream[200:]:
            assert resumed.observe(event) == scan.observe(event)


class TestLastFiredBounded:
    def test_stale_refractory_stamps_pruned(self, catalog):
        p = Predictor([assoc({W1})], 300.0, catalog)
        p.observe(warn_event(0.0))
        assert len(p.state.last_fired) == 1
        # Quiet stretch far past the refractory: the amortized sweep in
        # _prune must drop the stamp (it can never suppress again).
        p.observe(warn_event(10_000.0, code=W2))
        p.observe(warn_event(20_000.0, code=W2))
        assert len(p.state.last_fired) <= 1
        p.observe(warn_event(30_000.0, code=W2))
        assert FATAL not in {k[1] for k in p.state.last_fired}

    def test_bounded_over_many_fires(self, catalog):
        # One firing rule re-triggered over simulated weeks: the map
        # holds the live stamp, not one entry per firing.
        p = Predictor([assoc({W1})], 300.0, catalog)
        for day in range(100):
            p.observe(warn_event(day * 86_400.0))
        assert len(p.state.last_fired) == 1
