"""Unit tests for the meta-learner."""

import pytest

from repro.core.meta import MetaLearner
from repro.learners.base import BaseLearner
from repro.learners.rules import StatisticalRule
from repro.parallel.executor import (
    ExecutorBroken,
    SerialExecutor,
    ThreadExecutor,
)


class _CountingLearner(BaseLearner):
    name = "counting"

    def __init__(self, catalog=None):
        super().__init__(catalog)
        self.calls = 0

    def train(self, log, window):
        self.calls += 1
        return [StatisticalRule(k=9, window=window, probability=0.99)]


class TestConstruction:
    def test_by_name(self, catalog):
        ml = MetaLearner(("association", "statistical"), catalog=catalog)
        assert ml.learner_names == ["association", "statistical"]

    def test_by_instance(self, catalog):
        learner = _CountingLearner(catalog)
        ml = MetaLearner([learner], catalog=catalog)
        assert ml.learners[0] is learner

    def test_mixed(self, catalog):
        ml = MetaLearner(["association", _CountingLearner(catalog)], catalog=catalog)
        assert ml.learner_names == ["association", "counting"]

    def test_learner_params_forwarded(self, catalog):
        ml = MetaLearner(
            ("association",),
            catalog=catalog,
            learner_params={"association": {"min_support": 0.5}},
        )
        assert ml.learners[0].min_support == 0.5

    def test_empty_rejected(self, catalog):
        with pytest.raises(ValueError, match="at least one"):
            MetaLearner((), catalog=catalog)

    def test_duplicate_names_rejected(self, catalog):
        with pytest.raises(ValueError, match="duplicate"):
            MetaLearner(
                [_CountingLearner(catalog), _CountingLearner(catalog)],
                catalog=catalog,
            )

    def test_default_executor_serial(self, catalog):
        assert isinstance(MetaLearner(catalog=catalog).executor, SerialExecutor)


class TestTraining:
    def test_all_learners_invoked(self, catalog, mid_trace):
        learner = _CountingLearner(catalog)
        ml = MetaLearner([learner], catalog=catalog)
        out = ml.train(mid_trace.clean.slice_weeks(0, 4), 300.0, week=4)
        assert learner.calls == 1
        assert out.week == 4
        assert out.rules_by_learner["counting"]

    def test_records_deduplicate_by_key(self, catalog, mid_trace):
        # two learners emitting the same rule key produce one record
        a, b = _CountingLearner(catalog), _CountingLearner(catalog)
        b.name = "counting2"
        ml = MetaLearner([a, b], catalog=catalog)
        out = ml.train(mid_trace.clean.slice_weeks(0, 2), 300.0)
        assert out.n_rules == 1
        assert len(out.records()) == 1

    def test_records_carry_provenance(self, catalog, mid_trace):
        ml = MetaLearner(("statistical",), catalog=catalog)
        out = ml.train(mid_trace.clean.slice_weeks(0, 8), 300.0, week=8)
        for record in out.records():
            assert record.learner == "statistical"
            assert record.trained_at_week == 8

    def test_invalid_window(self, catalog, mid_trace):
        ml = MetaLearner(catalog=catalog)
        with pytest.raises(ValueError, match="window"):
            ml.train(mid_trace.clean, 0.0)

    def test_thread_executor_matches_serial(self, catalog, mid_trace):
        log = mid_trace.clean.slice_weeks(0, 10)
        serial = MetaLearner(catalog=catalog).train(log, 300.0)
        with ThreadExecutor(max_workers=3) as pool:
            threaded = MetaLearner(catalog=catalog, executor=pool).train(log, 300.0)
        for name in serial.rules_by_learner:
            assert {r.key for r in serial.rules_by_learner[name]} == {
                r.key for r in threaded.rules_by_learner[name]
            }

    def test_full_ensemble_produces_all_kinds(self, catalog, mid_trace):
        ml = MetaLearner(catalog=catalog)
        out = ml.train(mid_trace.clean.slice_weeks(0, 26), 300.0)
        assert out.rules_by_learner["association"]
        assert out.rules_by_learner["statistical"]
        assert out.rules_by_learner["distribution"]


class _BrokenExecutorStub:
    """Executor whose pool is permanently broken (infrastructure, not task)."""

    def __init__(self):
        self.calls = 0

    def map(self, fn, tasks):
        self.calls += 1
        raise ExecutorBroken("stub pool broke")


class TestSerialFallback:
    def test_broken_pool_falls_back_to_serial_once(self, catalog):
        from repro import observe
        from tests.conftest import make_log

        learner = _CountingLearner(catalog)
        broken = _BrokenExecutorStub()
        meta = MetaLearner([learner], catalog=catalog, executor=broken)
        log = make_log([(10.0, "KERNEL-N-000", {})])
        registry = observe.MetricsRegistry()
        with observe.use_registry(registry):
            output = meta.train(log, 300.0)
        assert broken.calls == 1
        assert learner.calls == 1  # the serial retry actually trained
        assert output.n_rules == 1
        assert isinstance(meta.executor, SerialExecutor)
        assert registry.counter("meta.train.serial_fallback").value == 1

    def test_sibling_sharing_closed_pool_falls_back_serial(self, catalog):
        """When one session's break closes a *shared* pool, every other
        session sharing it sees ``ExecutorBroken`` (not RuntimeError) on
        its next retrain and degrades to serial — it must never respawn
        a nested pool of its own."""
        from tests.conftest import make_log

        pool = ThreadExecutor(max_workers=1)
        pool.close()  # as the first session to hit the break would
        learner = _CountingLearner(catalog)
        meta = MetaLearner([learner], catalog=catalog, executor=pool)
        output = meta.train(make_log([(10.0, "KERNEL-N-000", {})]), 300.0)
        assert learner.calls == 1
        assert output.n_rules == 1
        assert isinstance(meta.executor, SerialExecutor)

    def test_learner_bugs_still_propagate(self, catalog):
        class _Bug(BaseLearner):
            name = "bug"

            def train(self, log, window):
                raise ZeroDivisionError("task bug")

        from tests.conftest import make_log

        meta = MetaLearner([_Bug(catalog)], catalog=catalog)
        with pytest.raises(ZeroDivisionError):
            meta.train(make_log([(10.0, "KERNEL-N-000", {})]), 300.0)
