"""Unit tests for the ROC-based reviser (Algorithm 1)."""

import math

import pytest

from repro.core.knowledge import RuleRecord
from repro.core.reviser import Reviser
from repro.learners.rules import AssociationRule, StatisticalRule
from repro.raslog.events import Severity
from tests.conftest import make_log

FATAL = "KERNEL-F-000"
GOOD_W = "KERNEL-N-001"
BAD_W = "KERNEL-N-002"


def rule_record(antecedent, consequent=FATAL):
    return RuleRecord(
        rule=AssociationRule(
            antecedent=frozenset(antecedent),
            consequent=consequent,
            support=0.1,
            confidence=0.5,
        ),
        learner="association",
        trained_at_week=0,
    )


def training_log(n=12):
    """GOOD_W reliably precedes FATAL; BAD_W fires constantly without."""
    specs = []
    for i in range(n):
        t = (i + 1) * 5000.0
        specs.append((t - 60.0, GOOD_W, {"severity": Severity.WARNING}))
        specs.append((t, FATAL, {"severity": Severity.FATAL}))
    for i in range(4 * n):
        specs.append((i * 1250.0 + 400.0, BAD_W, {"severity": Severity.WARNING}))
    return make_log(specs)


class TestAlgorithm1:
    def test_keeps_good_rule_drops_bad(self, catalog):
        reviser = Reviser(min_roc=0.7, catalog=catalog)
        records = [rule_record({GOOD_W}), rule_record({BAD_W})]
        result = reviser.revise(records, training_log(), window=300.0)
        kept_keys = {r.key for r in result.kept}
        assert rule_record({GOOD_W}).key in kept_keys
        assert rule_record({BAD_W}).key not in kept_keys

    def test_scores_attached_to_records(self, catalog):
        reviser = Reviser(catalog=catalog)
        records = [rule_record({GOOD_W})]
        result = reviser.revise(records, training_log(), window=300.0)
        rec = result.kept[0]
        assert rec.tp > 0
        assert rec.roc > 0.7
        # perfect rule: precision and recall both 1 -> roc = sqrt(2)
        assert rec.roc == pytest.approx(math.sqrt(2.0), abs=0.01)

    def test_rule_that_never_fires_dropped(self, catalog):
        reviser = Reviser(catalog=catalog)
        silent = rule_record({"KERNEL-N-050"})
        result = reviser.revise([silent], training_log(), window=300.0)
        assert result.kept == []
        assert result.scores[silent.key].roc == 0.0

    def test_min_roc_boundary_is_exclusive(self, catalog):
        # a perfect rule has roc = sqrt(2); with min_roc = sqrt(2) it must
        # be discarded (Algorithm 1 keeps only roc > MinROC)
        reviser = Reviser(min_roc=math.sqrt(2.0), catalog=catalog)
        result = reviser.revise([rule_record({GOOD_W})], training_log(), 300.0)
        assert result.kept == []

    def test_statistical_rule_scored(self, catalog):
        # bursty failures: the k=2 rule is effective
        specs = []
        for i in range(10):
            base = i * 50_000.0
            for j in range(4):
                specs.append(
                    (base + j * 60.0, FATAL, {"severity": Severity.FATAL})
                )
        log = make_log(specs)
        rec = RuleRecord(
            rule=StatisticalRule(k=2, window=300.0, probability=0.9),
            learner="statistical",
            trained_at_week=0,
        )
        result = Reviser(catalog=catalog).revise([rec], log, 300.0)
        assert result.kept and result.kept[0].roc > 0.7

    def test_min_roc_validation(self, catalog):
        with pytest.raises(ValueError, match="min_roc"):
            Reviser(min_roc=2.0, catalog=catalog)
        with pytest.raises(ValueError, match="min_roc"):
            Reviser(min_roc=-0.1, catalog=catalog)

    def test_window_validation(self, catalog):
        with pytest.raises(ValueError, match="window"):
            Reviser(catalog=catalog).revise([], training_log(), 0.0)

    def test_empty_candidates(self, catalog):
        result = Reviser(catalog=catalog).revise([], training_log(), 300.0)
        assert result.kept == [] and result.removed == []

    def test_removed_keys_property(self, catalog):
        reviser = Reviser(catalog=catalog)
        records = [rule_record({BAD_W})]
        result = reviser.revise(records, training_log(), 300.0)
        assert result.removed_keys == {rule_record({BAD_W}).key}

    def test_default_min_roc_is_papers(self, catalog):
        assert Reviser(catalog=catalog).min_roc == 0.7
