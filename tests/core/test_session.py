"""Unit tests for the pure session core and the wrapper stack.

The core is the ordered event-at-a-time state machine; everything
operational (reordering, journaling, metering) composes around it
through the three-method :class:`StreamSession` protocol.  These tests
pin the layering contract: each wrapper adds exactly its one concern and
the stack as a whole behaves like the monolithic session it replaced.
"""

import pytest

from repro import observe
from repro.core.framework import FrameworkConfig
from repro.core.online import OnlinePredictionSession
from repro.core.session import SessionCore, StreamSession
from repro.observe.wrappers import MeteredSession
from repro.resilience.journal import EventJournal
from repro.resilience.wrappers import JournalingSession, ReorderingSession
from repro.utils.timeutil import WEEK_SECONDS
from tests.conftest import make_event, make_log

PRECURSOR_A = "KERNEL-N-002"
PRECURSOR_B = "KERNEL-N-003"
FATAL = "KERNEL-F-000"


def pattern_log(weeks=6):
    period = 10_800.0
    specs = []
    t = 600.0
    while t + 120.0 < weeks * WEEK_SECONDS:
        specs += [(t, PRECURSOR_A), (t + 60.0, PRECURSOR_B), (t + 120.0, FATAL)]
        t += period
    return make_log(specs)


def fast_config(**overrides):
    return FrameworkConfig(
        initial_train_weeks=2, retrain_weeks=2, **overrides
    )


class TestProtocol:
    def test_every_layer_is_a_stream_session(self, catalog, tmp_path):
        core = SessionCore(fast_config(), catalog=catalog)
        assert isinstance(core, StreamSession)
        reordering = ReorderingSession(core, slack=60.0)
        assert isinstance(reordering, StreamSession)
        journal = EventJournal(tmp_path / "j", fsync="never")
        assert isinstance(JournalingSession(reordering, journal), StreamSession)
        assert isinstance(MeteredSession(core), StreamSession)
        journal.close()

    def test_facade_is_a_stream_session(self, catalog):
        session = OnlinePredictionSession(fast_config(), catalog=catalog)
        assert isinstance(session, StreamSession)


class TestSessionCore:
    def test_orders_enforced(self, catalog):
        core = SessionCore(fast_config(), catalog=catalog)
        core.ingest(make_event(100.0, PRECURSOR_A))
        with pytest.raises(ValueError, match="time order"):
            core.ingest(make_event(50.0, PRECURSOR_B))
        with pytest.raises(ValueError, match="clock moved backwards"):
            core.advance(50.0)

    def test_rejects_pre_origin_events(self, catalog):
        core = SessionCore(fast_config(), catalog=catalog, origin=1000.0)
        with pytest.raises(ValueError, match="precedes the session origin"):
            core.ingest(make_event(999.0, PRECURSOR_A))

    def test_trains_at_boundary_and_predicts(self, catalog):
        core = SessionCore(fast_config(), catalog=catalog)
        assert not core.started
        warnings = []
        for event in pattern_log():
            warnings.extend(core.ingest(event))
        assert core.started
        assert [r.week for r in core.retrains] == [2, 4]
        assert warnings
        assert core.warnings == warnings
        summary = core.summary()
        assert summary.n_warnings == len(warnings)
        assert summary.precision > 0.9

    def test_flush_is_a_noop(self, catalog):
        core = SessionCore(fast_config(), catalog=catalog)
        assert core.flush() == []

    def test_matches_facade_warning_for_warning(self, catalog):
        """The facade over a bare core is a pure veneer: identical
        warnings, retrains and summary."""
        log = pattern_log()
        core = SessionCore(fast_config(), catalog=catalog)
        session = OnlinePredictionSession(fast_config(), catalog=catalog)
        for event in log:
            core.ingest(event)
            session.ingest(event)
        assert core.warnings == session.warnings
        assert [r.week for r in core.retrains] == [
            r.week for r in session.retrains
        ]
        ours, theirs = core.summary(), session.summary()
        assert (ours.n_events, ours.n_fatal, ours.n_warnings) == (
            theirs.n_events,
            theirs.n_fatal,
            theirs.n_warnings,
        )
        assert (ours.precision, ours.recall) == (theirs.precision, theirs.recall)


class TestReorderingLayer:
    def test_heals_disorder_within_slack(self, catalog):
        log = list(pattern_log())
        swapped = log.copy()
        swapped[10], swapped[11] = swapped[11], swapped[10]

        straight = SessionCore(fast_config(), catalog=catalog)
        for event in log:
            straight.ingest(event)

        core = SessionCore(fast_config(), catalog=catalog)
        layer = ReorderingSession(core, slack=300.0)
        for event in swapped:
            layer.ingest(event)
        layer.flush()
        assert layer.n_quarantined == 0
        assert core.warnings == straight.warnings

    def test_quarantines_beyond_slack(self, catalog):
        core = SessionCore(fast_config(), catalog=catalog)
        layer = ReorderingSession(core, slack=60.0)
        layer.ingest(make_event(10_000.0, PRECURSOR_A))
        layer.ingest(make_event(100.0, PRECURSOR_B))  # hopelessly late
        layer.flush()
        assert layer.n_quarantined == 1
        assert len(layer.quarantined) == 1
        assert layer.quarantined[0].timestamp == 100.0


class TestJournalingLayer:
    def test_appends_before_delegating(self, catalog, tmp_path):
        core = SessionCore(fast_config(), catalog=catalog)
        journal = EventJournal(tmp_path / "j", fsync="never")
        layer = JournalingSession(core, journal)
        layer.ingest(make_event(100.0, PRECURSOR_A))
        layer.advance(200.0)
        layer.flush()
        journal.close()

        replayed = [
            record
            for _, record in EventJournal(tmp_path / "j", fsync="never").replay()
        ]
        assert [r["kind"] for r in replayed] == ["ingest", "advance", "flush"]
        assert replayed[0]["event"]["timestamp"] == 100.0
        assert replayed[1]["now"] == 200.0

    def test_suppress_skips_the_journal(self, catalog, tmp_path):
        core = SessionCore(fast_config(), catalog=catalog)
        journal = EventJournal(tmp_path / "j", fsync="never")
        layer = JournalingSession(core, journal)
        layer.suppress = True
        layer.ingest(make_event(100.0, PRECURSOR_A))
        layer.suppress = False
        layer.ingest(make_event(200.0, PRECURSOR_A))
        journal.close()
        replayed = [
            record
            for _, record in EventJournal(tmp_path / "j", fsync="never").replay()
        ]
        assert [r["event"]["timestamp"] for r in replayed] == [200.0]


class TestMeteredLayer:
    def test_records_labeled_series(self, catalog):
        registry = observe.MetricsRegistry()
        core = SessionCore(fast_config(), catalog=catalog)
        layer = MeteredSession(
            core, prefix="service", degraded_of=core, shard="R01"
        )
        with observe.use_registry(registry):
            for event in pattern_log(3):
                layer.ingest(event)
        events = registry.counter("service.events", shard="R01")
        assert events.value == len(pattern_log(3))
        assert registry.histogram("service.ingest", shard="R01").count > 0
        assert registry.counter("service.warnings", shard="R01").value == len(
            core.warnings
        )
        assert registry.gauge("service.degraded", shard="R01").value == 0.0
