"""Unit tests for rule-churn accounting (Figure 12)."""

import pytest

from repro.core.tracking import ChurnHistory, ChurnRecord, diff_rule_sets


class TestDiff:
    def test_partition(self):
        previous = {("a",), ("b",), ("c",)}
        candidates = {("b",), ("c",), ("d",), ("e",)}
        reviser_removed = {("e",)}
        rec = diff_rule_sets(4, previous, candidates, reviser_removed)
        assert rec.unchanged == 2  # b, c
        assert rec.added == 1  # d
        assert rec.removed_by_meta == 1  # a
        assert rec.removed_by_reviser == 1  # e
        assert rec.total_active == 3

    def test_reviser_removals_must_be_candidates(self):
        with pytest.raises(ValueError, match="subset"):
            diff_rule_sets(0, set(), {("a",)}, {("b",)})

    def test_initial_training_all_added(self):
        rec = diff_rule_sets(26, set(), {("a",), ("b",)}, set())
        assert rec.unchanged == 0
        assert rec.added == 2
        assert rec.removed_by_meta == 0

    def test_reviser_rejected_candidate_counts_once(self):
        # a rule that was previously held, is re-learned, but now fails the
        # ROC filter: counts as removed_by_reviser, not unchanged
        rec = diff_rule_sets(4, {("a",)}, {("a",)}, {("a",)})
        assert rec.unchanged == 0
        assert rec.removed_by_reviser == 1
        assert rec.removed_by_meta == 0

    def test_change_ratio(self):
        rec = ChurnRecord(
            week=0, unchanged=10, added=5, removed_by_meta=3, removed_by_reviser=2
        )
        assert rec.change_ratio == pytest.approx(1.0)

    def test_change_ratio_no_unchanged(self):
        rec = ChurnRecord(
            week=0, unchanged=0, added=5, removed_by_meta=0, removed_by_reviser=0
        )
        assert rec.change_ratio == float("inf")


class TestHistory:
    def make(self, week):
        return ChurnRecord(
            week=week, unchanged=1, added=1, removed_by_meta=0, removed_by_reviser=0
        )

    def test_append_in_order(self):
        h = ChurnHistory()
        h.append(self.make(4))
        h.append(self.make(8))
        assert len(h) == 2

    def test_out_of_order_rejected(self):
        h = ChurnHistory()
        h.append(self.make(8))
        with pytest.raises(ValueError, match="week order"):
            h.append(self.make(4))

    def test_series_shape(self):
        h = ChurnHistory()
        h.append(self.make(4))
        h.append(self.make(8))
        series = h.series()
        assert series["week"] == [4, 8]
        assert set(series) == {
            "week",
            "unchanged",
            "added",
            "removed_by_meta",
            "removed_by_reviser",
        }
