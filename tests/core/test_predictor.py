"""Unit tests for the event-driven predictor (Algorithm 2)."""

import pytest

from repro.core.predictor import Predictor
from repro.learners.rules import (
    ANY_FAILURE,
    AssociationRule,
    DistributionRule,
    StatisticalRule,
)
from repro.raslog.events import Severity
from tests.conftest import make_event, make_log

FATAL = "KERNEL-F-000"
FATAL2 = "KERNEL-F-001"
W1, W2 = "KERNEL-N-002", "KERNEL-N-003"


def assoc(antecedent, consequent=FATAL, confidence=0.9):
    return AssociationRule(
        antecedent=frozenset(antecedent),
        consequent=consequent,
        support=0.1,
        confidence=confidence,
    )


def stat(k, window=300.0, p=0.9):
    return StatisticalRule(k=k, window=window, probability=p)


def dist(quantile=1000.0, threshold=0.6):
    return DistributionRule(
        distribution="weibull",
        params=(1.0, quantile),
        threshold=threshold,
        quantile_time=quantile,
    )


def fatal_event(t):
    return make_event(t, FATAL, severity=Severity.FATAL)


def warn_event(t, code=W1):
    return make_event(t, code, severity=Severity.WARNING)


class TestConstruction:
    def test_rules_partitioned(self, catalog):
        p = Predictor([assoc({W1}), stat(2), dist()], 300.0, catalog)
        assert len(p.association_rules) == 1
        assert len(p.statistical_rules) == 1
        assert len(p.distribution_rules) == 1
        assert p.n_rules == 3

    def test_f_and_e_lists(self, catalog):
        r1, r2 = assoc({W1, W2}), assoc({W1}, consequent=FATAL2)
        p = Predictor([r1, r2], 300.0, catalog)
        assert set(p.f_list) == {FATAL, FATAL2}
        assert p.e_list[W1] == {FATAL, FATAL2}
        assert p.e_list[W2] == {FATAL}

    def test_invalid_window(self, catalog):
        with pytest.raises(ValueError, match="window"):
            Predictor([], 0.0, catalog)

    def test_invalid_ensemble(self, catalog):
        with pytest.raises(ValueError, match="ensemble"):
            Predictor([], 300.0, catalog, ensemble="voting")

    def test_invalid_horizon_cap(self, catalog):
        with pytest.raises(ValueError, match="dist_horizon_cap"):
            Predictor([], 300.0, catalog, dist_horizon_cap=0.0)

    def test_unsupported_rule_type(self, catalog):
        with pytest.raises(TypeError, match="unsupported rule"):
            Predictor(["not a rule"], 300.0, catalog)


class TestAssociationMatching:
    def test_fires_when_antecedent_complete(self, catalog):
        p = Predictor([assoc({W1, W2})], 300.0, catalog)
        assert p.observe(warn_event(10.0, W1)) == []
        warnings = p.observe(warn_event(20.0, W2))
        assert len(warnings) == 1
        assert warnings[0].predicted == FATAL
        assert warnings[0].learner == "association"
        assert warnings[0].time == 20.0
        assert warnings[0].deadline == 320.0

    def test_single_item_rule_fires_immediately(self, catalog):
        p = Predictor([assoc({W1})], 300.0, catalog)
        assert len(p.observe(warn_event(5.0, W1))) == 1

    def test_stale_precursor_expires(self, catalog):
        p = Predictor([assoc({W1, W2})], 300.0, catalog)
        p.observe(warn_event(10.0, W1))
        # W1 fell out of the window by the time W2 arrives
        assert p.observe(warn_event(400.0, W2)) == []

    def test_refractory_suppresses_duplicate(self, catalog):
        p = Predictor([assoc({W1})], 300.0, catalog)
        assert len(p.observe(warn_event(10.0, W1))) == 1
        assert p.observe(warn_event(20.0, W1)) == []
        # after the refractory period it may fire again
        assert len(p.observe(warn_event(320.0, W1))) == 1

    def test_unrelated_event_ignored(self, catalog):
        p = Predictor([assoc({W1})], 300.0, catalog)
        assert p.observe(warn_event(10.0, "KERNEL-N-050")) == []

    def test_fatal_event_does_not_trigger_association(self, catalog):
        # mixture of experts: fatal events consult statistical rules
        p = Predictor([assoc({W1})], 300.0, catalog)
        p.observe(warn_event(10.0, W1))  # consume refractory
        assert p.observe(fatal_event(20.0)) == []


class TestStatisticalMatching:
    def test_fires_at_burst_threshold(self, catalog):
        p = Predictor([stat(2)], 300.0, catalog)
        assert p.observe(fatal_event(10.0)) == []
        warnings = p.observe(fatal_event(50.0))
        assert len(warnings) == 1
        assert warnings[0].predicted == ANY_FAILURE
        assert warnings[0].learner == "statistical"

    def test_most_specific_rule_wins(self, catalog):
        p = Predictor([stat(2), stat(3)], 300.0, catalog)
        p.observe(fatal_event(10.0))
        w2 = p.observe(fatal_event(20.0))
        assert w2[0].rule_key == stat(2).key
        w3 = p.observe(fatal_event(30.0))
        assert w3[0].rule_key == stat(3).key

    def test_burst_window_expires(self, catalog):
        p = Predictor([stat(2)], 300.0, catalog)
        p.observe(fatal_event(10.0))
        assert p.observe(fatal_event(1000.0)) == []


class TestDistributionMatching:
    def test_fires_after_quantile_elapsed(self, catalog):
        p = Predictor([dist(quantile=1000.0)], 300.0, catalog)
        p.observe(fatal_event(0.0))
        assert p.observe(warn_event(500.0)) == []
        warnings = p.observe(warn_event(1200.0))
        assert len(warnings) == 1
        assert warnings[0].learner == "distribution"

    def test_never_fires_before_first_failure(self, catalog):
        p = Predictor([dist(quantile=10.0)], 300.0, catalog)
        assert p.observe(warn_event(5000.0)) == []

    def test_rearms_after_horizon(self, catalog):
        p = Predictor([dist(quantile=1000.0)], 300.0, catalog)
        p.observe(fatal_event(0.0))
        first = p.observe(warn_event(1100.0))
        assert len(first) == 1
        horizon = first[0].window
        # silent until one horizon later
        assert p.observe(warn_event(1100.0 + horizon / 2)) == []
        again = p.observe(warn_event(1200.0 + horizon))
        assert len(again) == 1

    def test_failure_resets_elapsed(self, catalog):
        p = Predictor([dist(quantile=1000.0), stat(5)], 300.0, catalog)
        p.observe(fatal_event(0.0))
        p.observe(fatal_event(900.0))  # resets the clock
        assert p.observe(warn_event(1500.0)) == []  # only 600 s elapsed

    def test_horizon_capped(self, catalog):
        p = Predictor(
            [dist(quantile=100_000.0)], 300.0, catalog, dist_horizon_cap=3600.0
        )
        p.observe(fatal_event(0.0))
        warnings = p.observe(warn_event(150_000.0))
        assert warnings[0].window == 3600.0

    def test_horizon_at_least_wp(self, catalog):
        p = Predictor([dist(quantile=50.0)], 300.0, catalog)
        p.observe(fatal_event(0.0))
        warnings = p.observe(warn_event(100.0))
        assert warnings[0].window == 300.0


class TestEnsemblePolicies:
    def test_experts_mode_silences_fallback(self, catalog):
        # association match means the distribution expert is not consulted
        p = Predictor([assoc({W1}), dist(quantile=10.0)], 300.0, catalog)
        p.observe(fatal_event(0.0))
        warnings = p.observe(warn_event(1000.0, W1))
        assert [w.learner for w in warnings] == ["association"]

    def test_union_mode_fires_all(self, catalog):
        p = Predictor(
            [assoc({W1}), dist(quantile=10.0)], 300.0, catalog, ensemble="union"
        )
        p.observe(fatal_event(0.0))
        warnings = p.observe(warn_event(1000.0, W1))
        assert {w.learner for w in warnings} == {"association", "distribution"}


class TestClockDiscipline:
    def test_out_of_order_event_rejected(self, catalog):
        p = Predictor([], 300.0, catalog)
        p.observe(warn_event(100.0))
        with pytest.raises(ValueError, match="time order"):
            p.observe(warn_event(50.0))

    def test_advance_backwards_rejected(self, catalog):
        p = Predictor([], 300.0, catalog)
        p.advance(100.0)
        with pytest.raises(ValueError, match="backwards"):
            p.advance(50.0)

    def test_advance_fires_time_triggered(self, catalog):
        p = Predictor([dist(quantile=1000.0)], 300.0, catalog)
        p.observe(fatal_event(0.0))
        assert p.advance(500.0) == []
        assert len(p.advance(1500.0)) == 1


class TestReplay:
    def test_replay_equals_manual_observe(self, catalog):
        rules = [assoc({W1, W2})]
        log = make_log(
            [
                (10.0, W1, {"severity": Severity.WARNING}),
                (20.0, W2, {"severity": Severity.WARNING}),
                (100.0, FATAL, {"severity": Severity.FATAL}),
            ]
        )
        p1 = Predictor(rules, 300.0, catalog)
        replayed = p1.replay(log, tick=None)
        p2 = Predictor(rules, 300.0, catalog)
        manual = [w for e in log for w in p2.observe(e)]
        assert replayed == manual

    def test_replay_with_timer_fires_between_events(self, catalog):
        log = make_log(
            [
                (0.0, FATAL, {"severity": Severity.FATAL}),
                (10_000.0, W1, {"severity": Severity.WARNING}),
            ]
        )
        p = Predictor([dist(quantile=1000.0)], 300.0, catalog)
        warnings = p.replay(log, tick=60.0)
        dist_warnings = [w for w in warnings if w.learner == "distribution"]
        assert dist_warnings
        # the first timer firing lands on the tick grid after the quantile
        assert dist_warnings[0].time == pytest.approx(1020.0)

    def test_replay_without_timer_waits_for_events(self, catalog):
        log = make_log(
            [
                (0.0, FATAL, {"severity": Severity.FATAL}),
                (10_000.0, W1, {"severity": Severity.WARNING}),
            ]
        )
        p = Predictor([dist(quantile=1000.0)], 300.0, catalog)
        warnings = p.replay(log, tick=None)
        assert [w.time for w in warnings if w.learner == "distribution"] == [10_000.0]

    def test_replay_invalid_tick(self, catalog):
        with pytest.raises(ValueError, match="tick"):
            Predictor([], 300.0, catalog).replay(make_log([]), tick=0.0)

    def test_monitoring_set_pruned(self, catalog):
        p = Predictor([], 300.0, catalog)
        for t in (0.0, 100.0, 200.0, 600.0):
            p.observe(warn_event(t))
        assert [t for t, _ in p.state.monitoring] == [600.0]


class TestWeightedEnsemble:
    def test_filters_low_weight_rules(self, catalog):
        heavy = assoc({W1})
        light = assoc({W2}, consequent=FATAL2)
        weights = {heavy.key: 0.9, light.key: 0.1}
        p = Predictor(
            [heavy, light], 300.0, catalog,
            ensemble="weighted", rule_weights=weights,
        )
        assert len(p.observe(warn_event(10.0, W1))) == 1
        assert p.observe(warn_event(20.0, W2)) == []

    def test_unknown_rules_default_to_half(self, catalog):
        p = Predictor(
            [assoc({W1})], 300.0, catalog,
            ensemble="weighted", weight_threshold=0.5,
        )
        assert len(p.observe(warn_event(10.0, W1))) == 1  # 0.5 >= 0.5

    def test_threshold_validation(self, catalog):
        with pytest.raises(ValueError, match="weight_threshold"):
            Predictor([], 300.0, catalog, weight_threshold=1.5)

    def test_weighted_fires_all_experts(self, catalog):
        # like union, every expert speaks (subject to the weight filter)
        weights = {assoc({W1}).key: 0.9, dist(quantile=10.0).key: 0.9}
        p = Predictor(
            [assoc({W1}), dist(quantile=10.0)], 300.0, catalog,
            ensemble="weighted", rule_weights=weights,
        )
        p.observe(fatal_event(0.0))
        warnings = p.observe(warn_event(1000.0, W1))
        assert {w.learner for w in warnings} == {"association", "distribution"}


class TestFeedAndCatchUp:
    def test_feed_equals_catchup_plus_observe(self, catalog):
        rules = [dist(quantile=1000.0)]
        p1 = Predictor(rules, 300.0, catalog)
        p1.observe(fatal_event(0.0))
        combined = p1.feed(warn_event(5000.0), tick=60.0)

        p2 = Predictor(rules, 300.0, catalog)
        p2.observe(fatal_event(0.0))
        split = p2.catch_up(5000.0, tick=60.0)
        split += p2.observe(warn_event(5000.0))
        assert combined == split

    def test_catch_up_emits_nothing_without_rules(self, catalog):
        p = Predictor([], 300.0, catalog)
        assert p.catch_up(10_000.0, tick=60.0) == []

    def test_feed_invalid_tick(self, catalog):
        p = Predictor([], 300.0, catalog)
        with pytest.raises(ValueError, match="tick"):
            p.feed(warn_event(10.0), tick=-1.0)

    def test_catch_up_progresses_past_sub_ulp_quantile(self, catalog):
        """Regression: a fitted quantile a hair above a tick-grid multiple
        used to loop forever.  ``_next_timer_fire`` computes
        ``last_fatal + quantile`` — which rounds *down* to the grid point
        at this magnitude — while ``_check_distribution`` compares
        ``now - last_fatal >= quantile`` exactly, so the timer kept
        proposing an instant at which nothing would ever fire."""
        last_fatal = 2_398_320.0  # large enough that 6.5e-11 < ulp/2
        quantile = 10_800.0 + 6.5e-11
        p = Predictor([dist(quantile=quantile)], 300.0, catalog)
        p.observe(fatal_event(last_fatal))
        warnings = p.catch_up(last_fatal + 2.5 * 10_800.0, tick=60.0)
        assert warnings
        # The dead grid point is abandoned after one silent check; the
        # expert fires at the next tick.
        assert warnings[0].time == last_fatal + 10_800.0 + 60.0


class TestPrime:
    """Seeding a fresh predictor's window from pre-handover history."""

    def test_primed_precursor_completes_rule(self, catalog):
        """An antecedent event observed before the handover still counts:
        {W1, W2} -> FATAL must fire when W1 was primed and W2 arrives."""
        p = Predictor([assoc({W1, W2})], 300.0, catalog)
        p.prime([warn_event(940.0, W1)], now=1000.0)
        warnings = p.observe(warn_event(1060.0, W2))
        assert [w.predicted for w in warnings] == [FATAL]

    def test_unprimed_predictor_loses_the_warning(self, catalog):
        """The bug the priming fixes: without it the straddling precursor
        is invisible to the new predictor."""
        p = Predictor([assoc({W1, W2})], 300.0, catalog)
        p.state.clock = 1000.0
        assert p.observe(warn_event(1060.0, W2)) == []

    def test_prime_emits_no_warnings_and_sets_no_refractory(self, catalog):
        """Primed events must not fire rules (they already had their
        chance under the old rule set) nor consume the refractory."""
        p = Predictor([assoc({W1})], 300.0, catalog)
        p.prime([warn_event(940.0, W1)], now=1000.0)
        # A fresh W1 after the handover fires immediately.
        warnings = p.observe(warn_event(1010.0, W1))
        assert len(warnings) == 1

    def test_prime_seeds_fatal_state(self, catalog):
        p = Predictor([stat(2)], 300.0, catalog)
        p.prime([fatal_event(950.0)], now=1000.0)
        assert p.state.last_fatal_time == 950.0
        assert list(p.state.recent_fatals) == [950.0]
        # The next fatal completes the k=2 burst.
        warnings = p.observe(fatal_event(1050.0))
        assert [w.predicted for w in warnings] == [ANY_FAILURE]

    def test_prime_prunes_outside_window(self, catalog):
        p = Predictor([assoc({W1, W2})], 300.0, catalog)
        p.prime([warn_event(100.0, W1)], now=1000.0)
        assert len(p.state.monitoring) == 0
        assert p.observe(warn_event(1060.0, W2)) == []

    def test_prime_rejects_out_of_order(self, catalog):
        p = Predictor([], 300.0, catalog)
        with pytest.raises(ValueError, match="time order"):
            p.prime([warn_event(200.0), warn_event(100.0)])

    def test_prime_rejects_backwards_now(self, catalog):
        p = Predictor([], 300.0, catalog)
        with pytest.raises(ValueError, match="backwards"):
            p.prime([warn_event(200.0)], now=100.0)

    def test_prime_empty_history(self, catalog):
        p = Predictor([assoc({W1})], 300.0, catalog)
        p.prime([], now=1000.0)
        assert p.state.clock == 1000.0
