"""Integration tests for the dynamic meta-learning framework."""

import pytest

from repro.core.framework import DynamicMetaLearningFramework, FrameworkConfig
from repro.core.windows import dynamic_months, static_initial
from repro.utils.timeutil import WEEK_SECONDS


@pytest.fixture(scope="module")
def run_result(mid_trace):
    config = FrameworkConfig(initial_train_weeks=20, retrain_weeks=4)
    framework = DynamicMetaLearningFramework(config, catalog=mid_trace.catalog)
    return framework.run(mid_trace.clean)


class TestConfig:
    def test_paper_defaults(self):
        cfg = FrameworkConfig()
        assert cfg.prediction_window == 300.0
        assert cfg.retrain_weeks == 4
        assert cfg.policy == dynamic_months(6)
        assert cfg.min_roc == 0.7
        assert cfg.learners == ("association", "statistical", "distribution")

    def test_validation(self):
        with pytest.raises(ValueError):
            FrameworkConfig(prediction_window=0.0)
        with pytest.raises(ValueError):
            FrameworkConfig(retrain_weeks=0)
        with pytest.raises(ValueError):
            FrameworkConfig(initial_train_weeks=0)
        with pytest.raises(ValueError):
            FrameworkConfig(ensemble="nope")
        with pytest.raises(ValueError):
            FrameworkConfig(learners=())

    def test_tick_validation(self):
        with pytest.raises(ValueError, match="tick"):
            FrameworkConfig(tick=0.0)
        with pytest.raises(ValueError, match="tick"):
            FrameworkConfig(tick=-60.0)
        # None disables the deployment timer and is legal.
        assert FrameworkConfig(tick=None).tick is None

    def test_min_roc_validation(self):
        with pytest.raises(ValueError, match="min_roc"):
            FrameworkConfig(min_roc=-0.1)
        with pytest.raises(ValueError, match="min_roc"):
            FrameworkConfig(min_roc=1.2)
        assert FrameworkConfig(min_roc=0.0).min_roc == 0.0
        assert FrameworkConfig(min_roc=1.0).min_roc == 1.0

    def test_dist_horizon_cap_validation(self):
        with pytest.raises(ValueError, match="dist_horizon_cap"):
            FrameworkConfig(dist_horizon_cap=0.0)
        with pytest.raises(ValueError, match="dist_horizon_cap"):
            FrameworkConfig(dist_horizon_cap=-1.0)

    def test_with_helper(self):
        cfg = FrameworkConfig().with_(retrain_weeks=8)
        assert cfg.retrain_weeks == 8
        assert cfg.prediction_window == 300.0


class TestRunShape:
    def test_weekly_metrics_cover_test_span(self, run_result, mid_trace):
        assert run_result.start_week == 20
        assert run_result.end_week == mid_trace.clean.n_weeks
        weeks = [w.week for w in run_result.weekly]
        assert weeks == list(range(20, mid_trace.clean.n_weeks))

    def test_retrains_on_schedule(self, run_result):
        weeks = [r.week for r in run_result.retrains]
        assert weeks[0] == 20
        assert all((w - 20) % 4 == 0 for w in weeks)
        assert len(run_result.churn) == len(weeks)

    def test_training_span_respects_policy(self, run_result):
        for event in run_result.retrains:
            w0, w1 = event.train_span
            assert w1 == event.week
            assert w1 - w0 <= 26

    def test_rules_survive_revision(self, run_result):
        for event in run_result.retrains:
            assert 0 < event.n_kept <= event.n_candidates

    def test_warnings_in_test_span(self, run_result, mid_trace):
        start = 20 * WEEK_SECONDS
        assert all(w.time >= start for w in run_result.warnings)

    def test_overall_counts_consistent(self, run_result):
        total_tp = sum(w.counts.tp for w in run_result.weekly)
        total_fp = sum(w.counts.fp for w in run_result.weekly)
        assert run_result.overall.tp == total_tp
        assert run_result.overall.fp == total_fp
        assert total_tp + total_fp == len(run_result.warnings)

    def test_series_accessor(self, run_result):
        weeks, values = run_result.series("recall")
        assert len(weeks) == len(values) == len(run_result.weekly)
        with pytest.raises(ValueError, match="metric"):
            run_result.series("f1")

    def test_reasonable_accuracy(self, run_result):
        """Paper ballpark at the 5-minute window after 20 weeks training."""
        assert run_result.overall.precision > 0.5
        assert run_result.overall.recall > 0.4


class TestPolicies:
    def test_static_trains_once(self, mid_trace):
        config = FrameworkConfig(
            initial_train_weeks=20, policy=static_initial(5)
        )
        fw = DynamicMetaLearningFramework(config, catalog=mid_trace.catalog)
        result = fw.run(mid_trace.clean)
        assert len(result.retrains) == 1
        assert result.retrains[0].train_span == (0, 21)  # 5 months ≈ 21 wk

    def test_no_reviser_keeps_all_candidates(self, mid_trace):
        config = FrameworkConfig(
            initial_train_weeks=20, use_reviser=False, policy=static_initial(4)
        )
        fw = DynamicMetaLearningFramework(config, catalog=mid_trace.catalog)
        result = fw.run(mid_trace.clean, end_week=24)
        event = result.retrains[0]
        assert event.n_kept == event.n_candidates
        assert event.churn.removed_by_reviser == 0

    def test_run_window_arguments(self, mid_trace):
        fw = DynamicMetaLearningFramework(
            FrameworkConfig(initial_train_weeks=20), catalog=mid_trace.catalog
        )
        result = fw.run(mid_trace.clean, start_week=22, end_week=30)
        assert result.start_week == 22
        assert result.end_week == 30
        assert len(result.weekly) == 8

    def test_invalid_run_window(self, mid_trace):
        fw = DynamicMetaLearningFramework(catalog=mid_trace.catalog)
        with pytest.raises(ValueError, match="nothing to evaluate"):
            fw.run(mid_trace.clean, start_week=30, end_week=30)
        with pytest.raises(ValueError, match="start_week"):
            fw.run(mid_trace.clean, start_week=0, end_week=10)

    def test_single_learner_framework(self, mid_trace):
        config = FrameworkConfig(
            initial_train_weeks=20,
            learners=("statistical",),
            policy=static_initial(4),
        )
        fw = DynamicMetaLearningFramework(config, catalog=mid_trace.catalog)
        result = fw.run(mid_trace.clean, end_week=30)
        assert all(w.learner == "statistical" for w in result.warnings)


class TestLifecycle:
    def test_owned_executor_closed_on_exit(self):
        from repro.parallel.executor import ThreadExecutor

        ex = ThreadExecutor(max_workers=1)
        with DynamicMetaLearningFramework(executor=ex, own_executor=True):
            assert not ex.closed
        assert ex.closed

    def test_borrowed_executor_left_open(self):
        from repro.parallel.executor import ThreadExecutor

        ex = ThreadExecutor(max_workers=1)
        with DynamicMetaLearningFramework(executor=ex):
            pass
        assert not ex.closed
        ex.close()

    def test_close_without_executor_is_noop(self):
        fw = DynamicMetaLearningFramework()
        fw.close()
        fw.close()


class TestDeterminism:
    def test_same_input_same_result(self, mid_trace):
        config = FrameworkConfig(initial_train_weeks=20, retrain_weeks=8)
        r1 = DynamicMetaLearningFramework(config, catalog=mid_trace.catalog).run(
            mid_trace.clean, end_week=32
        )
        r2 = DynamicMetaLearningFramework(config, catalog=mid_trace.catalog).run(
            mid_trace.clean, end_week=32
        )
        assert len(r1.warnings) == len(r2.warnings)
        assert [w.time for w in r1.warnings] == [w.time for w in r2.warnings]
        assert r1.overall == r2.overall
