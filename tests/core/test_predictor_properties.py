"""Property-based invariants of the event-driven predictor.

Random rule sets replayed over random event streams must uphold the
predictor's contract regardless of input: warnings come out in time
order, every warning traces to a supplied rule, the per-rule refractory
period is honoured, and replay is deterministic.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.predictor import Predictor
from repro.learners.rules import (
    AssociationRule,
    CountRule,
    DistributionRule,
    StatisticalRule,
)
from repro.raslog.catalog import default_catalog
from repro.raslog.events import Severity
from tests.conftest import make_log

CATALOG = default_catalog()
NONFATAL = [t.code for t in CATALOG.nonfatal_types()[:6]]
FATAL = [t.code for t in CATALOG.fatal_types()[:3]]


@st.composite
def rule_sets(draw):
    rules = []
    for code in draw(st.sets(st.sampled_from(NONFATAL), max_size=3)):
        rules.append(
            AssociationRule(
                antecedent=frozenset({code}),
                consequent=draw(st.sampled_from(FATAL)),
                support=0.1,
                confidence=0.9,
            )
        )
    if draw(st.booleans()):
        rules.append(
            StatisticalRule(
                k=draw(st.integers(2, 4)), window=300.0, probability=0.9
            )
        )
    if draw(st.booleans()):
        rules.append(
            DistributionRule(
                distribution="weibull",
                params=(1.0, 1000.0),
                threshold=0.6,
                quantile_time=draw(st.floats(100.0, 5000.0)),
            )
        )
    if draw(st.booleans()):
        rules.append(
            CountRule(
                code=draw(st.sampled_from(NONFATAL)),
                count=draw(st.integers(2, 4)),
                window=300.0,
                consequent=draw(st.sampled_from(FATAL)),
                support=0.1,
                confidence=0.5,
            )
        )
    return rules


@st.composite
def event_streams(draw):
    n = draw(st.integers(min_value=0, max_value=40))
    gaps = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=2000.0, allow_nan=False),
            min_size=n,
            max_size=n,
        )
    )
    t = 0.0
    specs = []
    for gap in gaps:
        t += gap
        code = draw(st.sampled_from(NONFATAL + FATAL))
        severity = (
            Severity.FATAL if CATALOG.is_fatal_code(code) else Severity.INFO
        )
        specs.append((t, code, {"severity": severity}))
    return make_log(specs)


class TestPredictorInvariants:
    @settings(max_examples=60, deadline=None)
    @given(rule_sets(), event_streams())
    def test_warnings_time_ordered(self, rules, log):
        warnings = Predictor(rules, 300.0, CATALOG).replay(log)
        times = [w.time for w in warnings]
        assert times == sorted(times)

    @settings(max_examples=60, deadline=None)
    @given(rule_sets(), event_streams())
    def test_every_warning_traces_to_a_rule(self, rules, log):
        keys = {r.key for r in rules}
        warnings = Predictor(rules, 300.0, CATALOG).replay(log)
        assert all(w.rule_key in keys for w in warnings)
        assert all(w.window > 0 for w in warnings)
        assert all(w.deadline > w.time for w in warnings)

    @settings(max_examples=60, deadline=None)
    @given(rule_sets(), event_streams())
    def test_refractory_honoured(self, rules, log):
        predictor = Predictor(rules, 300.0, CATALOG)
        warnings = predictor.replay(log)
        last_fired: dict = {}
        for w in warnings:
            if w.rule_key in last_fired and w.learner != "distribution":
                assert w.time - last_fired[w.rule_key] >= predictor.refractory
            last_fired[w.rule_key] = w.time

    @settings(max_examples=40, deadline=None)
    @given(rule_sets(), event_streams())
    def test_replay_deterministic(self, rules, log):
        a = Predictor(rules, 300.0, CATALOG).replay(log)
        b = Predictor(rules, 300.0, CATALOG).replay(log)
        assert a == b

    @settings(max_examples=40, deadline=None)
    @given(rule_sets(), event_streams())
    def test_union_superset_of_experts(self, rules, log):
        """Every expert-mode warning also appears under the union policy
        (same rule, same time).

        The distribution expert is excluded: its re-arm timer advances on
        every firing, and union mode consults it on every event while
        experts mode only falls back to it when the other experts were
        silent — so its fire *times* legitimately diverge between the two
        policies.  The property holds for the stateless experts.
        """
        experts = Predictor(rules, 300.0, CATALOG, ensemble="experts").replay(log)
        union = Predictor(rules, 300.0, CATALOG, ensemble="union").replay(log)
        union_sigs = {(w.time, w.rule_key) for w in union}
        assert all(
            (w.time, w.rule_key) in union_sigs
            for w in experts
            if w.learner != "distribution"
        )

    @settings(max_examples=40, deadline=None)
    @given(rule_sets(), event_streams())
    def test_no_rules_no_warnings(self, rules, log):
        del rules
        assert Predictor([], 300.0, CATALOG).replay(log) == []

    @settings(max_examples=30, deadline=None)
    @given(event_streams())
    def test_monitoring_set_bounded_by_window(self, log):
        predictor = Predictor([], 300.0, CATALOG)
        for event in log:
            predictor.observe(event)
            times = [t for t, _ in predictor.state.monitoring]
            assert all(event.timestamp - t <= 300.0 for t in times[:-1])
