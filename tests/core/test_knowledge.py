"""Unit tests for the knowledge repository."""

import pytest

from repro.core.knowledge import KnowledgeRepository, RuleRecord
from repro.learners.rules import AssociationRule, StatisticalRule


def record(consequent="KERNEL-F-000", item="KERNEL-N-001", learner="association"):
    rule = AssociationRule(
        antecedent=frozenset({item}),
        consequent=consequent,
        support=0.1,
        confidence=0.9,
    )
    return RuleRecord(rule=rule, learner=learner, trained_at_week=0)


class TestRuleRecord:
    def test_key_delegates_to_rule(self):
        r = record()
        assert r.key == r.rule.key

    def test_with_scores(self):
        scored = record().with_scores(tp=5, fp=1, fn=2, roc=0.9)
        assert (scored.tp, scored.fp, scored.fn) == (5, 1, 2)
        assert scored.roc == 0.9
        assert scored.rule == record().rule  # rule unchanged


class TestRepository:
    def test_add_and_get(self):
        repo = KnowledgeRepository()
        r = record()
        repo.add(r)
        assert len(repo) == 1
        assert repo.get(r.key) is r
        assert r.key in repo

    def test_duplicate_key_rejected(self):
        repo = KnowledgeRepository([record()])
        with pytest.raises(ValueError, match="duplicate"):
            repo.add(record())

    def test_get_missing(self):
        with pytest.raises(KeyError, match="no rule"):
            KnowledgeRepository().get(("nope",))

    def test_records_sorted_deterministically(self):
        r1 = record(item="KERNEL-N-005")
        r2 = record(item="KERNEL-N-001")
        s = RuleRecord(
            rule=StatisticalRule(k=2, window=300.0, probability=0.9),
            learner="statistical",
            trained_at_week=0,
        )
        repo = KnowledgeRepository([s, r1, r2])
        kinds = [rec.rule.kind for rec in repo.records()]
        assert kinds == ["association", "association", "statistical"]

    def test_rules_matches_records(self):
        repo = KnowledgeRepository([record()])
        assert repo.rules() == [rec.rule for rec in repo.records()]

    def test_by_learner(self):
        s = RuleRecord(
            rule=StatisticalRule(k=2, window=300.0, probability=0.9),
            learner="statistical",
            trained_at_week=0,
        )
        repo = KnowledgeRepository([record(), s])
        assert len(repo.by_learner("association")) == 1
        assert len(repo.by_learner("statistical")) == 1
        assert repo.by_learner("distribution") == []

    def test_replace_all(self):
        repo = KnowledgeRepository([record()])
        new = record(consequent="KERNEL-F-002")
        repo.replace_all([new])
        assert len(repo) == 1
        assert new.key in repo

    def test_keys(self):
        r = record()
        assert KnowledgeRepository([r]).keys() == {r.key}

    def test_snapshot_is_independent(self):
        repo = KnowledgeRepository([record()])
        snap = repo.snapshot()
        repo.replace_all([])
        assert len(snap) == 1
        assert len(repo) == 0

    def test_iteration(self):
        repo = KnowledgeRepository([record()])
        assert [r.key for r in repo] == [record().key]
