"""Predictor monitoring-state snapshot/restore (checkpoint support).

The predictor is the one stateful component whose in-flight state — the
monitoring set E, the recent-fatal burst window, per-rule refractory
stamps, and the *armed* distribution-expert timer — cannot be rebuilt
from the rule repository.  These tests pin that a snapshot taken
mid-stream restores into a predictor that continues identically.
"""

from repro.core.predictor import Predictor
from repro.learners.rules import (
    AssociationRule,
    DistributionRule,
    StatisticalRule,
)
from repro.raslog.events import Severity
from tests.conftest import make_event

FATAL = "KERNEL-F-000"
W1, W2 = "KERNEL-N-002", "KERNEL-N-003"

RULES = [
    AssociationRule(
        antecedent=frozenset({W1, W2}),
        consequent=FATAL,
        support=0.1,
        confidence=0.9,
    ),
    StatisticalRule(k=2, window=300.0, probability=0.9),
    DistributionRule(
        distribution="weibull",
        params=(1.0, 900.0),
        threshold=0.5,
        quantile_time=900.0,
    ),
]


def fatal_event(t):
    return make_event(t, FATAL, severity=Severity.FATAL)


def warn_event(t, code=W1):
    return make_event(t, code, severity=Severity.WARNING)


def clone_via_snapshot(predictor):
    other = Predictor(RULES, 300.0, predictor.catalog)
    other.restore_state(predictor.state_snapshot())
    return other


class TestStateRoundTrip:
    def test_snapshot_is_json_ready(self, catalog):
        import json

        p = Predictor(RULES, 300.0, catalog)
        p.feed(warn_event(10.0))
        p.feed(fatal_event(50.0))
        snap = p.state_snapshot()
        assert json.loads(json.dumps(snap)) == snap

    def test_restored_predictor_continues_identically(self, catalog):
        p1 = Predictor(RULES, 300.0, catalog)
        prefix = [
            warn_event(10.0),
            fatal_event(60.0),
            fatal_event(120.0),
            warn_event(200.0, W2),
            warn_event(230.0),
        ]
        for e in prefix:
            p1.feed(e)
        p2 = clone_via_snapshot(p1)

        suffix = [
            warn_event(260.0, W2),  # completes {W1, W2} within the window
            fatal_event(300.0),
            fatal_event(350.0),  # statistical burst
            warn_event(2000.0),
        ]
        w1 = [w for e in suffix for w in p1.feed(e)]
        w2 = [w for e in suffix for w in p2.feed(e)]
        assert w1 == w2
        assert w1  # the comparison is not vacuous

    def test_refractory_stamps_survive(self, catalog):
        """A rule that fired just before the snapshot must stay
        suppressed just after it."""
        p1 = Predictor(RULES, 300.0, catalog)
        p1.feed(warn_event(10.0))
        fired = p1.feed(warn_event(40.0, W2))
        assert any(w.learner == "association" for w in fired)
        p2 = clone_via_snapshot(p1)
        again = p2.feed(warn_event(70.0, W2))
        assert not any(w.learner == "association" for w in again)

    def test_armed_distribution_timer_straddles_snapshot(self, catalog):
        """Headline case: a fatal arms the elapsed-time expert (quantile
        900 s); snapshot while armed; the restored predictor's timer
        fires at the same instant as the original's."""
        p1 = Predictor(RULES, 300.0, catalog)
        p1.feed(fatal_event(100.0))
        p2 = clone_via_snapshot(p1)  # timer armed, due at t=1000

        fires1 = p1.catch_up(2000.0, tick=60.0)
        fires2 = p2.catch_up(2000.0, tick=60.0)
        assert fires1 == fires2
        assert fires1 and all(w.learner == "distribution" for w in fires1)
        assert fires1[0].time >= 1000.0

    def test_rearm_delay_survives_snapshot(self, catalog):
        """After a distribution firing, the re-arm delay (not just the
        armed state) must round-trip: the restored predictor stays
        quiet exactly as long as the original."""
        p1 = Predictor(RULES, 300.0, catalog)
        p1.feed(fatal_event(100.0))
        assert p1.catch_up(1100.0, tick=60.0)  # fires once, re-arms later
        p2 = clone_via_snapshot(p1)
        assert p1.catch_up(3000.0, tick=60.0) == p2.catch_up(3000.0, tick=60.0)
