"""Unit tests for training-window policies (Figure 9)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.windows import (
    TrainingPolicy,
    dynamic_months,
    dynamic_whole,
    static_initial,
)


class TestPolicies:
    def test_growing_uses_all_history(self):
        policy = dynamic_whole()
        assert policy.window(32) == (0, 32)
        assert policy.retrains

    def test_sliding_six_months(self):
        policy = dynamic_months(6)
        assert policy.length_weeks == 26  # 6 * 30 / 7 rounded
        assert policy.window(32) == (6, 32)
        assert policy.retrains

    def test_sliding_three_months(self):
        policy = dynamic_months(3)
        assert policy.length_weeks == 13
        assert policy.window(32) == (19, 32)

    def test_sliding_clamps_at_zero(self):
        assert dynamic_months(6).window(10) == (0, 10)

    def test_static_fixed_window(self):
        policy = static_initial(6)
        assert not policy.retrains
        assert policy.window(10) == (0, 26)
        assert policy.window(100) == (0, 26)

    def test_paper_example_week32_six_months(self):
        # "in the 32nd week, the data in the previous 26 weeks is used"
        assert dynamic_months(6).window(32) == (32 - 26, 32)


class TestValidation:
    def test_bad_kind(self):
        with pytest.raises(ValueError, match="kind"):
            TrainingPolicy(kind="random")

    def test_bad_length(self):
        with pytest.raises(ValueError, match="length_weeks"):
            TrainingPolicy(kind="sliding", length_weeks=0)

    def test_bad_months(self):
        with pytest.raises(ValueError):
            dynamic_months(0)
        with pytest.raises(ValueError):
            static_initial(-1)

    def test_negative_week(self):
        with pytest.raises(ValueError, match="current_week"):
            dynamic_whole().window(-1)


class TestProperties:
    @given(
        st.sampled_from(["growing", "sliding", "static"]),
        st.integers(min_value=1, max_value=60),
        st.integers(min_value=0, max_value=500),
    )
    def test_window_always_valid(self, kind, length, week):
        policy = TrainingPolicy(kind=kind, length_weeks=length)
        start, end = policy.window(week)
        assert 0 <= start <= end

    @given(st.integers(min_value=1, max_value=24), st.integers(min_value=30, max_value=300))
    def test_sliding_window_has_fixed_length(self, months, week):
        policy = dynamic_months(months)
        start, end = policy.window(week)
        if week >= policy.length_weeks:
            assert end - start == policy.length_weeks
        else:
            assert start == 0
