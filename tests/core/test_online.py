"""Tests for the online (streaming) prediction session."""

import pytest

from repro.core.framework import DynamicMetaLearningFramework, FrameworkConfig
from repro.core.online import OnlinePredictionSession
from repro.core.windows import static_initial
from repro.utils.timeutil import WEEK_SECONDS
from tests.conftest import make_event


@pytest.fixture(scope="module")
def config():
    return FrameworkConfig(initial_train_weeks=20, retrain_weeks=4)


class TestBatchEquivalence:
    def test_same_warnings_as_batch(self, mid_trace, config):
        """The headline guarantee: streaming a log event-by-event yields
        exactly the warning stream of a batch framework run."""
        log = mid_trace.clean
        batch = DynamicMetaLearningFramework(
            config, catalog=mid_trace.catalog
        ).run(log)
        session = OnlinePredictionSession(config, catalog=mid_trace.catalog)
        streamed = []
        for event in log:
            streamed.extend(session.ingest(event))
        assert streamed == batch.warnings
        assert session.warnings == batch.warnings

    def test_same_retraining_schedule(self, mid_trace, config):
        log = mid_trace.clean
        batch = DynamicMetaLearningFramework(
            config, catalog=mid_trace.catalog
        ).run(log)
        session = OnlinePredictionSession(config, catalog=mid_trace.catalog)
        for event in log:
            session.ingest(event)
        assert [r.week for r in session.retrains] == [
            r.week for r in batch.retrains
        ]
        assert [r.train_span for r in session.retrains] == [
            r.train_span for r in batch.retrains
        ]
        assert session.churn.series() == batch.churn.series()

    def test_summary_matches_batch_metrics(self, mid_trace, config):
        log = mid_trace.clean
        batch = DynamicMetaLearningFramework(
            config, catalog=mid_trace.catalog
        ).run(log)
        session = OnlinePredictionSession(config, catalog=mid_trace.catalog)
        for event in log:
            session.ingest(event)
        summary = session.summary()
        assert summary.precision == pytest.approx(batch.overall.precision)
        assert summary.recall == pytest.approx(batch.overall.recall)


class TestStreamDiscipline:
    def test_silent_during_initial_training(self, catalog, config):
        session = OnlinePredictionSession(config, catalog=catalog)
        w = session.ingest(make_event(100.0, "KERNEL-N-000"))
        assert w == []
        assert not session.started

    def test_out_of_order_rejected(self, catalog, config):
        session = OnlinePredictionSession(config, catalog=catalog)
        session.ingest(make_event(100.0, "KERNEL-N-000"))
        with pytest.raises(ValueError, match="time order"):
            session.ingest(make_event(50.0, "KERNEL-N-000"))

    def test_event_before_origin_rejected(self, catalog, config):
        session = OnlinePredictionSession(
            config, catalog=catalog, origin=1000.0
        )
        with pytest.raises(ValueError, match="precedes"):
            session.ingest(make_event(10.0, "KERNEL-N-000"))

    def test_advance_backwards_rejected(self, catalog, config):
        session = OnlinePredictionSession(config, catalog=catalog)
        session.advance(500.0)
        with pytest.raises(ValueError, match="backwards"):
            session.advance(100.0)

    def test_current_week_tracks_clock(self, catalog, config):
        session = OnlinePredictionSession(config, catalog=catalog)
        session.advance(3 * WEEK_SECONDS + 10.0)
        assert session.current_week == 3

    def test_history_accumulates(self, catalog, config):
        session = OnlinePredictionSession(config, catalog=catalog)
        for t in (10.0, 20.0, 30.0):
            session.ingest(make_event(t, "KERNEL-N-000"))
        assert len(session.history()) == 3

    def test_static_policy_trains_once(self, mid_trace, catalog):
        config = FrameworkConfig(
            initial_train_weeks=20, policy=static_initial(4)
        )
        session = OnlinePredictionSession(config, catalog=mid_trace.catalog)
        for event in mid_trace.clean:
            session.ingest(event)
        assert len(session.retrains) == 1

    def test_sparse_stream_crosses_multiple_boundaries(self, mid_trace, catalog):
        """A long silent gap spanning several retraining boundaries only
        applies the latest retraining (as the batch framework would when
        those weeks contain no events)."""
        config = FrameworkConfig(initial_train_weeks=20, retrain_weeks=4)
        session = OnlinePredictionSession(config, catalog=mid_trace.catalog)
        # feed 22 weeks of real data, then jump to week 35
        for event in mid_trace.clean.slice_weeks(0, 22):
            session.ingest(event)
        session.ingest(make_event(35 * WEEK_SECONDS + 5.0, "KERNEL-N-000"))
        weeks = [r.week for r in session.retrains]
        assert weeks[0] == 20
        assert weeks[-1] == 32  # 20, 24, 28, 32 all crossed
        assert weeks == [20, 24, 28, 32]

    def test_summary_before_start(self, catalog, config):
        session = OnlinePredictionSession(config, catalog=catalog)
        summary = session.summary()
        assert summary.n_warnings == 0
        assert summary.precision == 0.0
        assert summary.recall == 0.0
