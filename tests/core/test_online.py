"""Tests for the online (streaming) prediction session."""

import numpy as np
import pytest

from repro.core.framework import DynamicMetaLearningFramework, FrameworkConfig
from repro.core.online import OnlinePredictionSession, SessionSummary
from repro.core.windows import static_initial
from repro.evaluation.matching import match_warnings
from repro.parallel.executor import ThreadExecutor
from repro.utils.timeutil import WEEK_SECONDS
from tests.conftest import make_event, make_log


@pytest.fixture(scope="module")
def config():
    return FrameworkConfig(initial_train_weeks=20, retrain_weeks=4)


class TestBatchEquivalence:
    def test_same_warnings_as_batch(self, mid_trace, config):
        """The headline guarantee: streaming a log event-by-event yields
        exactly the warning stream of a batch framework run."""
        log = mid_trace.clean
        batch = DynamicMetaLearningFramework(
            config, catalog=mid_trace.catalog
        ).run(log)
        session = OnlinePredictionSession(config, catalog=mid_trace.catalog)
        streamed = []
        for event in log:
            streamed.extend(session.ingest(event))
        assert streamed == batch.warnings
        assert session.warnings == batch.warnings

    def test_same_retraining_schedule(self, mid_trace, config):
        log = mid_trace.clean
        batch = DynamicMetaLearningFramework(
            config, catalog=mid_trace.catalog
        ).run(log)
        session = OnlinePredictionSession(config, catalog=mid_trace.catalog)
        for event in log:
            session.ingest(event)
        assert [r.week for r in session.retrains] == [
            r.week for r in batch.retrains
        ]
        assert [r.train_span for r in session.retrains] == [
            r.train_span for r in batch.retrains
        ]
        assert session.churn.series() == batch.churn.series()

    def test_summary_matches_batch_metrics(self, mid_trace, config):
        log = mid_trace.clean
        batch = DynamicMetaLearningFramework(
            config, catalog=mid_trace.catalog
        ).run(log)
        session = OnlinePredictionSession(config, catalog=mid_trace.catalog)
        for event in log:
            session.ingest(event)
        summary = session.summary()
        assert summary.precision == pytest.approx(batch.overall.precision)
        assert summary.recall == pytest.approx(batch.overall.recall)


PRECURSOR_A = "KERNEL-N-002"
PRECURSOR_B = "KERNEL-N-003"
FATAL = "KERNEL-F-000"


def straddling_log():
    """A stationary A → B → FATAL pattern every 3 hours, with one pattern
    deliberately straddling the week-4 retraining boundary: A arrives 90 s
    before the boundary, B and the failure after it."""
    boundary = 4 * WEEK_SECONDS
    period = 10_800.0
    specs = []
    t = 600.0
    while t + 120.0 < boundary - period:
        specs += [(t, PRECURSOR_A), (t + 60.0, PRECURSOR_B), (t + 120.0, FATAL)]
        t += period
    specs += [
        (boundary - 90.0, PRECURSOR_A),
        (boundary + 30.0, PRECURSOR_B),
        (boundary + 90.0, FATAL),
    ]
    t = boundary + period
    while t + 120.0 < 6 * WEEK_SECONDS:
        specs += [(t, PRECURSOR_A), (t + 60.0, PRECURSOR_B), (t + 120.0, FATAL)]
        t += period
    return make_log(specs)


class TestBoundaryStraddling:
    """Regression for the post-retrain warning loss: precursors that
    arrived just before a retraining boundary must still complete rules
    after the fresh predictor takes over."""

    @pytest.fixture(scope="class")
    def runs(self, catalog):
        log = straddling_log()
        config = FrameworkConfig(initial_train_weeks=2, retrain_weeks=2)
        batch = DynamicMetaLearningFramework(config, catalog=catalog).run(log)
        session = OnlinePredictionSession(config, catalog=catalog)
        streamed = []
        for event in log:
            streamed.extend(session.ingest(event))
        return batch, session, streamed

    def test_stream_equals_batch_across_boundary(self, runs):
        batch, session, streamed = runs
        assert streamed == batch.warnings
        assert session.warnings == batch.warnings

    def test_straddling_precursor_not_lost(self, runs):
        """The two-item rule {A, B} -> FATAL must fire just after the
        boundary, which requires the primed pre-boundary A (the one-item
        {B} rule would fire regardless, so check the rule key)."""
        _, session, _ = runs
        boundary = 4 * WEEK_SECONDS
        key = ("assoc", FATAL, (PRECURSOR_A, PRECURSOR_B))
        fired = [
            w
            for w in session.warnings
            if w.rule_key == key and boundary < w.time <= boundary + 300.0
        ]
        assert fired, "straddling precursor was dropped at the retrain boundary"
        assert fired[0].time == boundary + 30.0
        assert fired[0].predicted == FATAL


class TestSummaryAccounting:
    def test_zero_denominator_precision_and_recall(self):
        matching = match_warnings([], np.zeros(0, dtype=np.float64), [])
        summary = SessionSummary(
            n_events=0, n_fatal=0, n_warnings=0, matching=matching
        )
        assert summary.precision == 0.0
        assert summary.recall == 0.0


class TestExecutorOwnership:
    def test_owned_executor_closed_on_exit(self, catalog, config):
        ex = ThreadExecutor(max_workers=1)
        with OnlinePredictionSession(
            config, catalog=catalog, executor=ex, own_executor=True
        ):
            assert not ex.closed
        assert ex.closed

    def test_borrowed_executor_left_open(self, catalog, config):
        ex = ThreadExecutor(max_workers=1)
        with OnlinePredictionSession(config, catalog=catalog, executor=ex):
            pass
        assert not ex.closed
        ex.close()

    def test_close_is_idempotent(self, catalog, config):
        ex = ThreadExecutor(max_workers=1)
        session = OnlinePredictionSession(
            config, catalog=catalog, executor=ex, own_executor=True
        )
        session.close()
        session.close()
        assert ex.closed


class TestStreamDiscipline:
    def test_silent_during_initial_training(self, catalog, config):
        session = OnlinePredictionSession(config, catalog=catalog)
        w = session.ingest(make_event(100.0, "KERNEL-N-000"))
        assert w == []
        assert not session.started

    def test_out_of_order_rejected(self, catalog, config):
        session = OnlinePredictionSession(config, catalog=catalog)
        session.ingest(make_event(100.0, "KERNEL-N-000"))
        with pytest.raises(ValueError, match="time order"):
            session.ingest(make_event(50.0, "KERNEL-N-000"))

    def test_event_before_origin_rejected(self, catalog, config):
        session = OnlinePredictionSession(
            config, catalog=catalog, origin=1000.0
        )
        with pytest.raises(ValueError, match="precedes"):
            session.ingest(make_event(10.0, "KERNEL-N-000"))

    def test_advance_backwards_rejected(self, catalog, config):
        session = OnlinePredictionSession(config, catalog=catalog)
        session.advance(500.0)
        with pytest.raises(ValueError, match="backwards"):
            session.advance(100.0)

    def test_current_week_tracks_clock(self, catalog, config):
        session = OnlinePredictionSession(config, catalog=catalog)
        session.advance(3 * WEEK_SECONDS + 10.0)
        assert session.current_week == 3

    def test_history_accumulates(self, catalog, config):
        session = OnlinePredictionSession(config, catalog=catalog)
        for t in (10.0, 20.0, 30.0):
            session.ingest(make_event(t, "KERNEL-N-000"))
        assert len(session.history()) == 3

    def test_static_policy_trains_once(self, mid_trace, catalog):
        config = FrameworkConfig(
            initial_train_weeks=20, policy=static_initial(4)
        )
        session = OnlinePredictionSession(config, catalog=mid_trace.catalog)
        for event in mid_trace.clean:
            session.ingest(event)
        assert len(session.retrains) == 1

    def test_sparse_stream_crosses_multiple_boundaries(self, mid_trace, catalog):
        """A long silent gap spanning several retraining boundaries only
        applies the latest retraining (as the batch framework would when
        those weeks contain no events)."""
        config = FrameworkConfig(initial_train_weeks=20, retrain_weeks=4)
        session = OnlinePredictionSession(config, catalog=mid_trace.catalog)
        # feed 22 weeks of real data, then jump to week 35
        for event in mid_trace.clean.slice_weeks(0, 22):
            session.ingest(event)
        session.ingest(make_event(35 * WEEK_SECONDS + 5.0, "KERNEL-N-000"))
        weeks = [r.week for r in session.retrains]
        assert weeks[0] == 20
        assert weeks[-1] == 32  # 20, 24, 28, 32 all crossed
        assert weeks == [20, 24, 28, 32]

    def test_summary_before_start(self, catalog, config):
        session = OnlinePredictionSession(config, catalog=catalog)
        summary = session.summary()
        assert summary.n_warnings == 0
        assert summary.precision == 0.0
        assert summary.recall == 0.0
