"""Unit tests for event categorization."""

import pytest

from repro.preprocess.categorizer import (
    CategorizationReport,
    Categorizer,
    normalize_description,
)
from repro.raslog.events import Facility, Severity
from tests.conftest import make_event, make_log


class TestNormalizeDescription:
    def test_case_and_whitespace(self):
        assert normalize_description("  Foo   BAR ") == "foo bar"

    def test_strips_numeric_tail(self):
        assert normalize_description("ddr error at 12345") == "ddr error at"
        assert normalize_description("error code 0x0badf00d") == "error code"

    def test_strips_bracketed_tail(self):
        assert normalize_description("cache error [bank 3]") == "cache error"

    def test_plain_text_unchanged(self):
        assert (
            normalize_description("uncorrectable torus error")
            == "uncorrectable torus error"
        )


class TestClassify:
    def test_by_description(self, catalog):
        cat = Categorizer(catalog)
        e = make_event(
            1.0, "uncorrectable torus error", facility=Facility.KERNEL,
            severity=Severity.FATAL,
        )
        t = cat.classify(e)
        assert t is not None and t.fatal

    def test_by_description_with_detail_suffix(self, catalog):
        cat = Categorizer(catalog)
        e = make_event(
            1.0, "Uncorrectable Torus Error 42", facility=Facility.KERNEL,
            severity=Severity.FATAL,
        )
        assert cat.classify(e) is not None

    def test_codes_pass_through(self, catalog):
        cat = Categorizer(catalog)
        e = make_event(1.0, "KERNEL-F-000", severity=Severity.FATAL)
        assert cat.classify(e).code == "KERNEL-F-000"

    def test_wrong_facility_no_match(self, catalog):
        cat = Categorizer(catalog)
        e = make_event(1.0, "uncorrectable torus error", facility=Facility.APP)
        assert cat.classify(e) is None

    def test_is_fatal_unknown_event(self, catalog):
        cat = Categorizer(catalog)
        assert not cat.is_fatal(make_event(1.0, "mystery"))


class TestCategorize:
    def test_rewrites_to_codes(self, catalog):
        cat = Categorizer(catalog)
        log = make_log(
            [(1.0, "uncorrectable torus error", {"severity": Severity.FATAL})]
        )
        out = cat.categorize(log)
        assert out[0].entry_data.startswith("KERNEL-F-")

    def test_skip_policy_drops_unknown(self, catalog):
        cat = Categorizer(catalog, unknown="skip")
        log = make_log([(1.0, "mystery"), (2.0, "KERNEL-N-000")])
        report = CategorizationReport()
        out = cat.categorize(log, report)
        assert len(out) == 1
        assert report.matched == 1
        assert report.unmatched == 1
        assert report.unmatched_by_facility[Facility.KERNEL] == 1
        assert report.match_rate == pytest.approx(0.5)

    def test_keep_policy_passes_unknown(self, catalog):
        cat = Categorizer(catalog, unknown="keep")
        log = make_log([(1.0, "mystery")])
        out = cat.categorize(log)
        assert len(out) == 1
        assert out[0].entry_data == "mystery"

    def test_error_policy_raises(self, catalog):
        cat = Categorizer(catalog, unknown="error")
        log = make_log([(1.0, "mystery")])
        with pytest.raises(ValueError, match="uncategorizable"):
            cat.categorize(log)

    def test_invalid_policy(self, catalog):
        with pytest.raises(ValueError, match="skip/error/keep"):
            Categorizer(catalog, unknown="whatever")

    def test_idempotent_on_categorized_log(self, catalog):
        cat = Categorizer(catalog)
        log = make_log([(1.0, "KERNEL-N-005")])
        once = cat.categorize(log)
        twice = cat.categorize(once)
        assert [e.entry_data for e in once] == [e.entry_data for e in twice]

    def test_preserves_order_and_origin(self, catalog):
        cat = Categorizer(catalog)
        log = make_log([(1.0, "KERNEL-N-000"), (2.0, "KERNEL-N-001")], origin=0.5)
        out = cat.categorize(log)
        assert out.origin == 0.5
        assert list(out.timestamps) == [1.0, 2.0]


class TestFakeFatalRemoval:
    def test_demoted_fatals_counted(self, catalog):
        fake = catalog.fake_fatal_types()[0]
        cat = Categorizer(catalog)
        log = make_log(
            [
                (
                    1.0,
                    fake.description,
                    {"facility": fake.facility, "severity": fake.severity},
                )
            ]
        )
        report = CategorizationReport()
        out = cat.categorize(log, report)
        assert report.demoted_fatals == 1
        assert not cat.is_fatal(out[0])

    def test_fatal_codes_exclude_fakes(self, catalog):
        cat = Categorizer(catalog)
        fatal_codes = cat.fatal_codes()
        assert len(fatal_codes) == 69
        for fake in catalog.fake_fatal_types():
            assert fake.code not in fatal_codes

    def test_synthetic_raw_log_fully_categorized(self, small_trace):
        cat = Categorizer(small_trace.catalog)
        report = CategorizationReport()
        sample = small_trace.raw[:2000]
        cat.categorize(sample, report)
        assert report.unmatched == 0
        assert report.match_rate == 1.0
