"""Integration tests for the preprocessing pipeline."""

import pytest

from repro.preprocess.pipeline import DEFAULT_THRESHOLD, PreprocessingPipeline
from repro.raslog.events import Severity
from tests.conftest import make_log


class TestPipeline:
    def test_default_threshold_is_papers(self):
        assert DEFAULT_THRESHOLD == 300.0

    def test_invalid_threshold(self):
        with pytest.raises(ValueError, match="non-negative"):
            PreprocessingPipeline(threshold=-5.0)

    def test_end_to_end_on_synthetic_raw(self, small_trace):
        pipe = PreprocessingPipeline(small_trace.catalog)
        result = pipe.run(small_trace.raw)
        assert result.categorization.match_rate == 1.0
        assert result.compression_rate > 0.9
        # output is categorized: every entry_data is a catalog code
        assert all(e.entry_data in pipe.catalog for e in result.clean)

    def test_recovers_fatal_stream(self, small_trace):
        pipe = PreprocessingPipeline(small_trace.catalog)
        result = pipe.run(small_trace.raw)
        fatal = result.clean.fatal(pipe.catalog)
        # close to ground truth (storm members at one job/location coalesce)
        assert 0.6 * small_trace.n_fatal <= len(fatal) <= small_trace.n_fatal

    def test_demotes_fake_fatals(self, small_trace):
        pipe = PreprocessingPipeline(small_trace.catalog)
        result = pipe.run(small_trace.raw)
        assert result.categorization.demoted_fatals > 0
        fatal_codes = {e.entry_data for e in result.clean.fatal(pipe.catalog)}
        fake_codes = {t.code for t in pipe.catalog.fake_fatal_types()}
        assert not (fatal_codes & fake_codes)

    def test_exact_duplicate_removal_toggle(self):
        log = make_log(
            [
                (1.0, "KERNEL-N-000", {"severity": Severity.INFO}),
                (1.0, "KERNEL-N-000", {"severity": Severity.INFO}),
            ]
        )
        with_dedup = PreprocessingPipeline(threshold=0.0).run(log)
        without = PreprocessingPipeline(
            threshold=0.0, drop_exact_duplicates=False
        ).run(log)
        assert len(with_dedup.clean) == 1
        assert len(without.clean) == 2

    def test_unknown_policy_forwarded(self):
        log = make_log([(1.0, "mystery event")])
        skip = PreprocessingPipeline(unknown="skip").run(log)
        keep = PreprocessingPipeline(unknown="keep").run(log)
        assert len(skip.clean) == 0
        assert len(keep.clean) == 1
