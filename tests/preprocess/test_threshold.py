"""Unit tests for the iterative filtering-threshold search (Table 4)."""

import pytest

from repro.preprocess.categorizer import Categorizer
from repro.preprocess.threshold import (
    TABLE4_THRESHOLDS,
    find_threshold,
    threshold_sweep,
)
from repro.raslog.store import EventLog
from tests.conftest import make_log


def duplicated_log():
    specs = []
    for i in range(20):
        base = i * 5000.0
        for rep in range(6):
            specs.append((base + rep * 20.0, f"code{i % 4}", {"job_id": i}))
    return make_log(specs)


class TestSweep:
    def test_zero_threshold_is_raw_count(self):
        log = duplicated_log()
        sweep = threshold_sweep(log, (0.0, 60.0, 300.0))
        assert sweep.totals[0] == len(log)

    def test_monotone_totals(self):
        sweep = threshold_sweep(duplicated_log(), TABLE4_THRESHOLDS)
        assert sweep.totals == sorted(sweep.totals, reverse=True)

    def test_per_facility_sums_to_total(self):
        sweep = threshold_sweep(duplicated_log(), (0.0, 120.0))
        for i in range(2):
            assert sum(col[i] for col in sweep.by_facility.values()) == sweep.totals[i]

    def test_compression_rates(self):
        sweep = threshold_sweep(duplicated_log(), (0.0, 300.0))
        rates = sweep.compression_rates()
        assert rates[0] == 0.0
        assert rates[1] == pytest.approx(1.0 - 20 / 120)

    def test_thresholds_must_ascend(self):
        with pytest.raises(ValueError, match="ascending"):
            threshold_sweep(duplicated_log(), (300.0, 0.0))

    def test_empty_thresholds_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            threshold_sweep(duplicated_log(), ())

    def test_as_table_includes_total_row(self):
        sweep = threshold_sweep(duplicated_log(), (0.0, 300.0))
        table = sweep.as_table()
        assert table.rows[-1]["facility"] == "TOTAL"
        assert table.rows[-1]["0s"] == 120

    def test_empty_log(self):
        sweep = threshold_sweep(EventLog(), (0.0, 300.0))
        assert sweep.totals == [0, 0]
        assert sweep.compression_rates() == [0.0, 0.0]


class TestFindThreshold:
    def test_stops_when_gain_fades(self):
        # duplicate reports are 20 s apart, so chain tupling at 60 s
        # already coalesces every tuple; larger thresholds add no gain
        log = duplicated_log()
        chosen, sweep = find_threshold(log, (0.0, 60.0, 120.0, 200.0, 300.0))
        assert chosen == 60.0
        assert sweep.totals[-1] == 20

    def test_requires_two_candidates(self):
        with pytest.raises(ValueError, match="at least two"):
            find_threshold(duplicated_log(), (300.0,))

    def test_empty_log_returns_first(self):
        chosen, _ = find_threshold(EventLog(), (0.0, 300.0))
        assert chosen == 0.0

    def test_on_synthetic_trace(self, small_trace):
        categorized = Categorizer(small_trace.catalog).categorize(small_trace.raw)
        chosen, sweep = find_threshold(categorized)
        assert chosen in TABLE4_THRESHOLDS
        assert chosen >= 10.0
        # the paper's headline: high compression at the chosen threshold
        idx = list(TABLE4_THRESHOLDS).index(chosen)
        assert sweep.compression_rates()[idx] > 0.9
