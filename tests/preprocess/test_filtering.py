"""Unit and property tests for temporal/spatial compression."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.preprocess.filtering import (
    FilterStats,
    compress,
    deduplicate_exact,
    spatial_compress,
    temporal_compress,
)
from tests.conftest import make_log


class TestTemporalCompression:
    def test_coalesces_repeats_at_one_location(self):
        log = make_log(
            [
                (0.0, "a", {"location": "L1", "job_id": 1}),
                (10.0, "a", {"location": "L1", "job_id": 1}),
                (20.0, "a", {"location": "L1", "job_id": 1}),
            ]
        )
        out, stats = temporal_compress(log, 30.0)
        assert len(out) == 1
        assert out[0].timestamp == 0.0  # earliest kept
        assert stats.n_input == 3 and stats.n_output == 1

    def test_chain_tupling_extends_past_threshold(self):
        # gaps of 20 s chain together even though the first and last are
        # 40 s apart (Hansen-Siewiorek tupling)
        log = make_log(
            [
                (0.0, "a", {"location": "L1"}),
                (20.0, "a", {"location": "L1"}),
                (40.0, "a", {"location": "L1"}),
            ]
        )
        out, _ = temporal_compress(log, 25.0)
        assert len(out) == 1

    def test_gap_beyond_threshold_splits(self):
        log = make_log(
            [(0.0, "a", {"location": "L1"}), (100.0, "a", {"location": "L1"})]
        )
        out, _ = temporal_compress(log, 50.0)
        assert len(out) == 2

    def test_different_locations_not_merged(self):
        log = make_log(
            [(0.0, "a", {"location": "L1"}), (1.0, "a", {"location": "L2"})]
        )
        out, _ = temporal_compress(log, 300.0)
        assert len(out) == 2

    def test_different_jobs_not_merged(self):
        log = make_log(
            [(0.0, "a", {"job_id": 1}), (1.0, "a", {"job_id": 2})]
        )
        out, _ = temporal_compress(log, 300.0)
        assert len(out) == 2

    def test_different_codes_not_merged(self):
        log = make_log([(0.0, "a"), (1.0, "b")])
        out, _ = temporal_compress(log, 300.0)
        assert len(out) == 2

    def test_zero_threshold_is_identity(self):
        log = make_log([(0.0, "a"), (0.0, "a")])
        out, stats = temporal_compress(log, 0.0)
        assert len(out) == 2
        assert stats.compression_rate == 0.0

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            temporal_compress(make_log([(0.0, "a")]), -1.0)


class TestSpatialCompression:
    def test_merges_across_locations(self):
        log = make_log(
            [
                (0.0, "a", {"location": "L1", "job_id": 1}),
                (5.0, "a", {"location": "L2", "job_id": 1}),
                (9.0, "a", {"location": "L3", "job_id": 1}),
            ]
        )
        out, _ = spatial_compress(log, 30.0)
        assert len(out) == 1
        assert out[0].location == "L1"

    def test_different_jobs_kept(self):
        log = make_log(
            [
                (0.0, "a", {"location": "L1", "job_id": 1}),
                (1.0, "a", {"location": "L2", "job_id": 2}),
            ]
        )
        out, _ = spatial_compress(log, 30.0)
        assert len(out) == 2

    def test_far_apart_kept(self):
        log = make_log(
            [
                (0.0, "a", {"location": "L1"}),
                (1000.0, "a", {"location": "L2"}),
            ]
        )
        out, _ = spatial_compress(log, 30.0)
        assert len(out) == 2


class TestFullCompression:
    def test_temporal_then_spatial(self):
        # 2 locations × 3 repeats of the same logical event
        specs = []
        for loc in ("L1", "L2"):
            for k in range(3):
                specs.append((k * 10.0, "a", {"location": loc, "job_id": 7}))
        log = make_log(specs)
        out, stats = compress(log, 60.0)
        assert len(out) == 1
        assert stats.n_input == 6
        assert stats.compression_rate == pytest.approx(5 / 6)

    def test_stats_by_facility(self):
        from repro.raslog.events import Facility

        log = make_log(
            [
                (0.0, "a", {"facility": Facility.APP}),
                (1.0, "a", {"facility": Facility.APP}),
            ]
        )
        _, stats = compress(log, 10.0)
        assert stats.by_facility[Facility.APP] == (2, 1)

    def test_empty_log(self):
        from repro.raslog.store import EventLog

        out, stats = compress(EventLog(), 300.0)
        assert len(out) == 0
        assert stats.compression_rate == 0.0

    def test_recovers_synthetic_logical_count(self, small_trace, catalog):
        """The filter at the paper's threshold approximately undoes the
        generator's duplication."""
        from repro.preprocess.categorizer import Categorizer

        categorized = Categorizer(small_trace.catalog).categorize(small_trace.raw)
        out, stats = compress(categorized, 300.0)
        n_clean = len(small_trace.clean)
        assert stats.compression_rate > 0.9
        assert 0.75 * n_clean <= len(out) <= 1.05 * n_clean


class TestDeduplicateExact:
    def test_removes_identical_rows(self):
        log = make_log([(1.0, "a"), (1.0, "a"), (1.0, "b")])
        assert len(deduplicate_exact(log)) == 2

    def test_keeps_distinct_locations(self):
        log = make_log(
            [(1.0, "a", {"location": "L1"}), (1.0, "a", {"location": "L2"})]
        )
        assert len(deduplicate_exact(log)) == 2


@st.composite
def duplicate_streams(draw):
    """Random logical events with random duplication."""
    n_logical = draw(st.integers(min_value=1, max_value=12))
    specs = []
    for i in range(n_logical):
        base = draw(st.floats(min_value=0, max_value=1e5, allow_nan=False))
        n_dup = draw(st.integers(min_value=1, max_value=5))
        for d in range(n_dup):
            offset = draw(st.floats(min_value=0, max_value=50.0, allow_nan=False))
            specs.append((base + offset, f"code{i}", {"job_id": i, "location": "L1"}))
    return specs


class TestProperties:
    @given(duplicate_streams(), st.floats(min_value=0.0, max_value=500.0))
    def test_output_never_larger(self, specs, threshold):
        log = make_log(specs)
        out, stats = compress(log, threshold)
        assert len(out) <= len(log)
        assert stats.n_output == len(out)

    @given(duplicate_streams())
    def test_monotone_in_threshold(self, specs):
        log = make_log(specs)
        sizes = [len(compress(log, t)[0]) for t in (0.0, 10.0, 60.0, 300.0)]
        assert sizes == sorted(sizes, reverse=True)

    @given(duplicate_streams(), st.floats(min_value=0.0, max_value=500.0))
    def test_idempotent(self, specs, threshold):
        log = make_log(specs)
        once, _ = compress(log, threshold)
        twice, _ = compress(once, threshold)
        assert len(once) == len(twice)

    @given(duplicate_streams(), st.floats(min_value=1.0, max_value=500.0))
    def test_kept_events_subset_of_input(self, specs, threshold):
        log = make_log(specs)
        out, _ = compress(log, threshold)
        input_ids = {e.record_id for e in log}
        assert {e.record_id for e in out} <= input_ids


class TestVectorizedEquivalence:
    """The vectorized filter must match a direct per-group reference."""

    @staticmethod
    def _reference_coalesce(log, threshold, key_fn):
        # The pre-vectorization algorithm, kept as a correctness oracle:
        # group indices per key, chain-tuple each group independently.
        from collections import defaultdict

        from repro.raslog.store import EventLog

        if threshold == 0 or len(log) == 0:
            return log
        groups = defaultdict(list)
        for i, event in enumerate(log):
            groups[key_fn(event)].append(i)
        kept_idx = set()
        for indices in groups.values():
            last = None
            for i in indices:
                t = log.timestamps[i]
                if last is None or t - last > threshold:
                    kept_idx.add(i)
                last = t
        return EventLog(
            tuple(e for i, e in enumerate(log.events) if i in kept_idx),
            origin=log.origin,
            _presorted=True,
        )

    @given(duplicate_streams(), st.floats(min_value=0.0, max_value=500.0))
    def test_temporal_matches_reference(self, specs, threshold):
        log = make_log(specs)
        expected = self._reference_coalesce(
            log, threshold, lambda e: (e.location, e.job_id, e.entry_data)
        )
        out, _ = temporal_compress(log, threshold)
        assert out.events == expected.events

    @given(duplicate_streams(), st.floats(min_value=0.0, max_value=500.0))
    def test_spatial_matches_reference(self, specs, threshold):
        log = make_log(specs)
        expected = self._reference_coalesce(
            log, threshold, lambda e: (e.job_id, e.entry_data)
        )
        out, _ = spatial_compress(log, threshold)
        assert out.events == expected.events

    @given(duplicate_streams())
    def test_dedup_matches_first_seen_wins(self, specs):
        log = make_log(specs)
        seen, expected = set(), []
        for e in log:
            sig = (e.timestamp, e.location, e.job_id, e.entry_data)
            if sig not in seen:
                seen.add(sig)
                expected.append(e)
        assert deduplicate_exact(log).events == tuple(expected)
