"""Unit tests for regimes and pattern drift."""

import dataclasses

import numpy as np
import pytest

from repro.raslog.catalog import default_catalog
from repro.raslog.drift import ChainTemplate, RegimeSchedule
from repro.raslog.profiles import SDSC_PROFILE, AnomalyWindow
from repro.utils.randoms import SeedSequencePool


def schedule_for(profile, seed=0):
    return RegimeSchedule(profile, default_catalog(), SeedSequencePool(seed))


class TestChainTemplate:
    def test_needs_precursors(self):
        with pytest.raises(ValueError, match="no precursors"):
            ChainTemplate(fatal_code="X", precursors=())

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError, match="repeats"):
            ChainTemplate(fatal_code="X", precursors=("a", "a"))

    def test_key(self):
        t = ChainTemplate(fatal_code="X", precursors=("a", "b"))
        assert t.key == ("X", ("a", "b"))


class TestScheduleStructure:
    def test_deterministic(self):
        a = schedule_for(SDSC_PROFILE, seed=3)
        b = schedule_for(SDSC_PROFILE, seed=3)
        for ra, rb in zip(a.regimes, b.regimes):
            assert {t.key for t in ra.templates} == {t.key for t in rb.templates}
            assert np.allclose(ra.fatal_weights, rb.fatal_weights)

    def test_seed_changes_templates(self):
        a = schedule_for(SDSC_PROFILE, seed=1)
        b = schedule_for(SDSC_PROFILE, seed=2)
        assert {t.key for t in a.regimes[0].templates} != {
            t.key for t in b.regimes[0].templates
        }

    def test_regime_at_boundaries(self):
        sched = schedule_for(SDSC_PROFILE)
        regimes = sched.regimes
        assert sched.regime_at(0) is regimes[0]
        second = regimes[1]
        assert sched.regime_at(second.start_week) is second
        assert sched.regime_at(second.start_week - 1) is regimes[0]

    def test_regime_at_negative_week(self):
        with pytest.raises(ValueError):
            schedule_for(SDSC_PROFILE).regime_at(-1)

    def test_spans_cover_trace(self):
        sched = schedule_for(SDSC_PROFILE)
        spans = sched.spans()
        assert spans[0][0] == 0
        assert spans[-1][1] == SDSC_PROFILE.weeks
        for (s0, e0, _), (s1, _, _) in zip(spans, spans[1:]):
            assert e0 == s1

    def test_fatal_weights_are_distribution(self):
        for regime in schedule_for(SDSC_PROFILE).regimes:
            assert regime.fatal_weights.sum() == pytest.approx(1.0)
            assert (regime.fatal_weights >= 0).all()
            assert len(regime.fatal_codes) == len(regime.fatal_weights)

    def test_templates_attach_to_fatal_codes(self):
        catalog = default_catalog()
        for regime in schedule_for(SDSC_PROFILE).regimes[:4]:
            for t in regime.templates:
                assert catalog.is_fatal_code(t.fatal_code)
                for p in t.precursors:
                    assert not catalog.is_fatal_code(p)


class TestDrift:
    def test_gradual_drift_keeps_majority(self):
        sched = schedule_for(SDSC_PROFILE, seed=9)
        period = SDSC_PROFILE.drift_period_weeks
        kept, added, removed = sched.template_churn(0, period)
        assert kept > added  # most templates survive one drift step
        assert added == removed  # template count is conserved per regime

    def test_drift_accumulates(self):
        sched = schedule_for(SDSC_PROFILE, seed=9)
        kept_short, _, _ = sched.template_churn(0, 8)
        kept_long, _, _ = sched.template_churn(0, 48)
        assert kept_long <= kept_short

    def test_reconfiguration_resets_process_params(self):
        sched = schedule_for(SDSC_PROFILE, seed=4)
        reconfig_week = 60
        before = sched.regime_at(reconfig_week - 1)
        after = sched.regime_at(reconfig_week)
        assert after.start_week == reconfig_week
        # wholesale resample: parameters jump rather than blend
        assert before.rate_multiplier != after.rate_multiplier

    def test_no_reconfig_without_anomaly(self):
        profile = dataclasses.replace(SDSC_PROFILE, anomalies=())
        sched = schedule_for(profile)
        starts = [r.start_week for r in sched.regimes]
        assert all(s % profile.drift_period_weeks == 0 for s in starts)

    def test_process_params_within_bounds(self):
        for regime in schedule_for(SDSC_PROFILE, seed=2).regimes:
            assert regime.rate_multiplier > 0
            assert 0.0 < regime.cascade_prob <= 0.65
            assert 0.0 < regime.storm_prob <= 0.55

    def test_template_for_missing_code(self):
        regime = schedule_for(SDSC_PROFILE).regimes[0]
        assert regime.template_for("NOPE-F-999") is None

    def test_storm_anomaly_does_not_create_regime(self):
        profile = dataclasses.replace(
            SDSC_PROFILE,
            anomalies=(
                AnomalyWindow(kind="storm", start_week=10, end_week=12),
            ),
        )
        sched = schedule_for(profile)
        starts = [r.start_week for r in sched.regimes]
        assert all(s % profile.drift_period_weeks == 0 for s in starts)


class TestFloodTemplates:
    def test_flood_factors_sampled(self):
        sched = schedule_for(SDSC_PROFILE, seed=1)
        factors = {t.flood_factor for t in sched.regimes[0].templates}
        assert factors <= {1, 3, 6}
        assert 1 in factors  # most templates do not flood

    def test_flood_factor_validation(self):
        with pytest.raises(ValueError, match="flood_factor"):
            ChainTemplate(fatal_code="X", precursors=("a",), flood_factor=0)

    def test_lead_scale_validation(self):
        with pytest.raises(ValueError, match="lead scale"):
            ChainTemplate(fatal_code="X", precursors=("a",), lead_scale=0.0)

    def test_lead_scales_span_minutes_to_hour(self):
        sched = schedule_for(SDSC_PROFILE, seed=1)
        scales = [t.lead_scale for t in sched.regimes[0].templates]
        assert min(scales) >= 60.0
        assert max(scales) <= 3600.0
        assert max(scales) > 3 * min(scales)  # genuinely diverse
