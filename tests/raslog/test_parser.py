"""Unit tests for the LogHub BGL parser/writer."""

import io

import pytest

from repro.raslog.events import Facility, Severity
from repro.raslog.parser import (
    ParseError,
    ParseReport,
    dump_log,
    format_line,
    iter_lines,
    load_log,
    parse_line,
)
from tests.conftest import make_log

GOOD_LINE = (
    "- 1117838570 2005.06.03 R02-M1-N0-C:J12-U11 2005-06-03-15.42.50.363779 "
    "R02-M1-N0-C:J12-U11 RAS KERNEL INFO instruction cache parity error corrected"
)
ALERT_LINE = (
    "KERNDTLB 1117838573 2005.06.03 R23-M0-NE-C:J05-U01 2005-06-03-15.42.53.276129 "
    "R23-M0-NE-C:J05-U01 RAS KERNEL FATAL data TLB error interrupt"
)


class TestParseLine:
    def test_basic_fields(self):
        e = parse_line(GOOD_LINE, line_no=7)
        assert e.timestamp == 1117838570.0
        assert e.location == "R02-M1-N0-C:J12-U11"
        assert e.facility is Facility.KERNEL
        assert e.severity is Severity.INFO
        assert e.entry_data == "instruction cache parity error corrected"
        assert e.record_id == 7
        assert e.event_type == "RAS"

    def test_alert_label_kept_in_event_type(self):
        e = parse_line(ALERT_LINE)
        assert e.event_type == "RAS:KERNDTLB"
        assert e.severity is Severity.FATAL

    def test_too_few_fields(self):
        with pytest.raises(ParseError, match="at least 9 fields"):
            parse_line("- 123 oops")

    def test_bad_epoch(self):
        bad = GOOD_LINE.replace("1117838570", "notanumber")
        with pytest.raises(ParseError, match="bad epoch"):
            parse_line(bad)

    def test_unknown_facility(self):
        bad = GOOD_LINE.replace(" KERNEL ", " QUANTUM ")
        with pytest.raises(ParseError, match="unknown facility"):
            parse_line(bad)

    def test_unknown_severity(self):
        bad = GOOD_LINE.replace(" INFO ", " MEH ")
        with pytest.raises(ParseError, match="unknown severity"):
            parse_line(bad)

    def test_empty_message_allowed(self):
        short = " ".join(GOOD_LINE.split()[:9])
        e = parse_line(short)
        assert e.entry_data == ""


class TestIterLines:
    def test_skips_blank_lines(self):
        events = list(iter_lines([GOOD_LINE, "", "  ", ALERT_LINE]))
        assert len(events) == 2

    def test_lenient_skips_bad_lines(self):
        report = ParseReport()
        events = list(iter_lines([GOOD_LINE, "garbage", ALERT_LINE], report=report))
        assert len(events) == 2
        assert report.parsed == 2
        assert report.skipped == 1
        assert len(report.errors) == 1

    def test_strict_raises(self):
        with pytest.raises(ParseError):
            list(iter_lines([GOOD_LINE, "garbage"], strict=True))

    def test_error_cap(self):
        report = ParseReport()
        list(iter_lines(["bad"] * 50, report=report))
        assert report.skipped == 50
        assert len(report.errors) == 20


class TestLoadDump:
    def test_load_from_stream(self):
        log = load_log(io.StringIO(GOOD_LINE + "\n" + ALERT_LINE + "\n"))
        assert len(log) == 2
        assert log.origin == 1117838570.0

    def test_load_from_file(self, tmp_path):
        path = tmp_path / "bgl.log"
        path.write_text(GOOD_LINE + "\n")
        log = load_log(path)
        assert len(log) == 1

    def test_round_trip(self, tmp_path):
        log = make_log(
            [
                (10.0, "some message text", {"severity": Severity.WARNING}),
                (20.0, "another message", {"facility": Facility.APP}),
            ]
        )
        path = tmp_path / "out.log"
        n = dump_log(log, path)
        assert n == 2
        back = load_log(path, strict=True)
        assert len(back) == 2
        assert [e.entry_data for e in back] == [e.entry_data for e in log]
        assert [e.severity for e in back] == [e.severity for e in log]
        assert [e.facility for e in back] == [e.facility for e in log]
        # epoch shift preserved up to integer seconds
        assert back[1].timestamp - back[0].timestamp == pytest.approx(10.0)

    def test_format_line_alert_round_trip(self):
        e = parse_line(ALERT_LINE)
        again = parse_line(format_line(e, origin_epoch=0.0))
        assert again.event_type == "RAS:KERNDTLB"

    def test_synthetic_raw_log_parses(self, small_trace, tmp_path):
        raw = small_trace.raw
        sample = raw[: min(200, len(raw))]
        path = tmp_path / "synth.log"
        dump_log(sample, path)
        report = ParseReport()
        back = load_log(path, report=report)
        assert report.skipped == 0
        assert len(back) == len(sample)


class TestRoundTripProperties:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    message_text = st.text(
        alphabet=st.characters(
            whitelist_categories=("Lu", "Ll", "Nd"), whitelist_characters=" .-_"
        ),
        max_size=60,
    ).map(lambda s: " ".join(s.split()))

    @settings(max_examples=60, deadline=None)
    @given(
        st.floats(min_value=0.0, max_value=1e8, allow_nan=False),
        message_text,
        st.sampled_from(list(Facility)),
        st.sampled_from(list(Severity)),
    )
    def test_format_parse_round_trip(self, t, message, facility, severity):
        from tests.conftest import make_event

        event = make_event(
            float(int(t)), message, facility=facility, severity=severity
        )
        line = format_line(event, origin_epoch=0.0)
        back = parse_line(line)
        assert back.facility is facility
        assert back.severity is severity
        assert back.entry_data == message
        assert back.timestamp == float(int(t))
        assert back.location == event.location
