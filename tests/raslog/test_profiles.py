"""Unit tests for system profiles."""

import pytest

from repro.raslog.events import Facility
from repro.raslog.profiles import (
    ANL_PROFILE,
    SDSC_PROFILE,
    TABLE4_FILTERED,
    TABLE4_RAW,
    AnomalyWindow,
    get_profile,
)


class TestAnomalyWindow:
    def test_covers(self):
        a = AnomalyWindow(kind="storm", start_week=5, end_week=8)
        assert a.covers(5) and a.covers(7)
        assert not a.covers(4) and not a.covers(8)

    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown anomaly kind"):
            AnomalyWindow(kind="party", start_week=0, end_week=1)

    def test_empty_window_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            AnomalyWindow(kind="storm", start_week=3, end_week=3)


class TestCalibration:
    def test_anl_dimensions(self):
        assert ANL_PROFILE.racks == 1
        assert ANL_PROFILE.compute_nodes == 1024
        assert ANL_PROFILE.weeks == 112

    def test_sdsc_dimensions(self):
        assert SDSC_PROFILE.racks == 3
        assert SDSC_PROFILE.compute_nodes == 3072
        assert SDSC_PROFILE.weeks == 132

    def test_rates_from_table4(self):
        # weekly rate * weeks reproduces the Table 4 300 s column
        for profile, system in ((ANL_PROFILE, "ANL"), (SDSC_PROFILE, "SDSC")):
            for fac, count in TABLE4_FILTERED[system].items():
                rate = profile.nonfatal_weekly_rates[fac]
                assert rate * profile.weeks == pytest.approx(count)

    def test_duplication_factors_from_table4(self):
        # spatial * temporal reproduces each facility's raw/filtered ratio
        for profile, system in ((ANL_PROFILE, "ANL"), (SDSC_PROFILE, "SDSC")):
            for fac, raw in TABLE4_RAW[system].items():
                filtered = TABLE4_FILTERED[system][fac]
                if filtered == 0:
                    continue
                product = (
                    profile.duplication_spatial[fac]
                    * profile.duplication_temporal[fac]
                )
                assert product == pytest.approx(raw / filtered, rel=1e-6)

    def test_anl_kernel_duplication_dominates(self):
        factor = (
            ANL_PROFILE.duplication_spatial[Facility.KERNEL]
            * ANL_PROFILE.duplication_temporal[Facility.KERNEL]
        )
        assert factor > 200  # 5.82 M raw vs 26.8 K filtered

    def test_anl_has_storm_anomaly(self):
        kinds = [a.kind for a in ANL_PROFILE.anomalies]
        assert "storm" in kinds

    def test_sdsc_has_reconfig_anomaly(self):
        reconfigs = [a for a in SDSC_PROFILE.anomalies if a.kind == "reconfig"]
        assert len(reconfigs) == 1
        assert reconfigs[0].start_week == 60


class TestScaling:
    def test_rates_scale(self):
        scaled = SDSC_PROFILE.scaled(0.5)
        for fac, rate in SDSC_PROFILE.nonfatal_weekly_rates.items():
            assert scaled.nonfatal_weekly_rates[fac] == pytest.approx(rate * 0.5)
        assert scaled.fatal_weekly_rate == pytest.approx(
            SDSC_PROFILE.fatal_weekly_rate * 0.5
        )

    def test_structure_preserved(self):
        scaled = SDSC_PROFILE.scaled(0.1)
        assert scaled.duplication_spatial == SDSC_PROFILE.duplication_spatial
        assert scaled.weibull_shape == SDSC_PROFILE.weibull_shape
        assert scaled.drift_fraction == SDSC_PROFILE.drift_fraction

    def test_weeks_override_truncates_anomalies(self):
        scaled = SDSC_PROFILE.scaled(1.0, weeks=30)
        assert scaled.weeks == 30
        assert all(a.end_week <= 30 for a in scaled.anomalies)
        # the week-60 reconfiguration falls outside a 30-week trace
        assert not any(a.kind == "reconfig" for a in scaled.anomalies)

    def test_anomaly_clip_keeps_partial_window(self):
        scaled = ANL_PROFILE.scaled(1.0, weeks=50)
        storm = [a for a in scaled.anomalies if a.kind == "storm"]
        assert len(storm) == 1
        assert storm[0].end_week == 50

    def test_invalid_scale(self):
        with pytest.raises(ValueError, match="scale must be positive"):
            SDSC_PROFILE.scaled(0.0)

    def test_invalid_weeks(self):
        with pytest.raises(ValueError, match="weeks must be positive"):
            SDSC_PROFILE.scaled(1.0, weeks=0)


class TestRegistry:
    def test_get_profile_case_insensitive(self):
        assert get_profile("sdsc") is SDSC_PROFILE
        assert get_profile("ANL") is ANL_PROFILE

    def test_get_profile_unknown(self):
        with pytest.raises(KeyError, match="unknown system profile"):
            get_profile("LLNL")

    def test_validation(self):
        import dataclasses

        with pytest.raises(ValueError):
            dataclasses.replace(SDSC_PROFILE, weeks=0)
        with pytest.raises(ValueError):
            dataclasses.replace(SDSC_PROFILE, precursor_fraction=1.5)
        with pytest.raises(ValueError):
            dataclasses.replace(SDSC_PROFILE, weibull_shape=-1.0)
        with pytest.raises(ValueError):
            dataclasses.replace(SDSC_PROFILE, fatal_weekly_rate=0.0)
