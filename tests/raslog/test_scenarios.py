"""Tests for the named regime-change scenario packs.

Pins the three properties the drift bench leans on: the registry is
stable and misuse-proof, a pack's trace is identical for equal seeds —
including across *processes*, since committed bench baselines assume it
— and each pack's regime change does what its name says (wholesale
template resample for ``reconfiguration``, precursor silence with
failures continuing for ``maintenance_window``).
"""

from __future__ import annotations

import dataclasses
import hashlib
import subprocess
import sys

import pytest

from repro.raslog.catalog import default_catalog
from repro.raslog.drift import RegimeSchedule
from repro.raslog.profiles import SDSC_PROFILE, AnomalyWindow
from repro.raslog.scenarios import (
    MAINTENANCE_WINDOW,
    RECONFIGURATION,
    SCENARIO_SEED,
    SCENARIOS,
    get_scenario,
)
from repro.utils.randoms import SeedSequencePool
from repro.utils.timeutil import WEEK_SECONDS

#: Small scale keeps generation fast while preserving every regime.
SCALE = 0.3


def trace_digest(syn) -> str:
    """Stable content hash of a generated trace (events + ground truth)."""
    h = hashlib.sha256()
    for e in syn.clean:
        h.update(f"{e.timestamp:.6f}|{e.entry_data}|{e.location}\n".encode())
    for t, c in zip(syn.fatal_times, syn.fatal_codes):
        h.update(f"fatal|{t:.6f}|{c}\n".encode())
    h.update(repr(sorted(syn.precursor_backed)).encode())
    return h.hexdigest()


class TestRegistry:
    def test_both_packs_registered(self):
        assert set(SCENARIOS) == {"reconfiguration", "maintenance_window"}
        assert SCENARIOS["reconfiguration"] is RECONFIGURATION
        assert SCENARIOS["maintenance_window"] is MAINTENANCE_WINDOW

    def test_get_scenario(self):
        assert get_scenario("reconfiguration") is RECONFIGURATION

    def test_unknown_name_lists_available(self):
        with pytest.raises(KeyError, match="maintenance_window"):
            get_scenario("nope")

    def test_packs_pin_one_anomaly_at_shift_week(self):
        for pack in SCENARIOS.values():
            assert len(pack.profile.anomalies) == 1
            anomaly = pack.profile.anomalies[0]
            assert anomaly.start_week == pack.shift_week
            assert pack.seed == SCENARIO_SEED
            # the scheduled anomaly is the only regime change in range
            assert pack.profile.drift_period_weeks > pack.profile.weeks


class TestDeterminism:
    def test_equal_seeds_identical_in_process(self):
        a = RECONFIGURATION.generate(scale=SCALE)
        b = RECONFIGURATION.generate(scale=SCALE)
        assert trace_digest(a) == trace_digest(b)

    def test_seed_override_changes_trace(self):
        a = RECONFIGURATION.generate(scale=SCALE)
        b = RECONFIGURATION.generate(scale=SCALE, seed=SCENARIO_SEED + 1)
        assert trace_digest(a) != trace_digest(b)

    def test_equal_seeds_identical_cross_process(self):
        """The committed bench baseline assumes the scenario trace is
        machine- and process-independent: a fresh interpreter must hash
        the trace to the same digest as this one."""
        ours = trace_digest(RECONFIGURATION.generate(scale=SCALE))
        script = (
            "import sys; sys.path.insert(0, 'src'); sys.path.insert(0, '.')\n"
            "from repro.raslog.scenarios import RECONFIGURATION\n"
            "from tests.raslog.test_scenarios import SCALE, trace_digest\n"
            "print(trace_digest(RECONFIGURATION.generate(scale=SCALE)))\n"
        )
        theirs = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
        assert theirs == ours


def schedule_with_reconfig(seed, shift_week=9):
    profile = dataclasses.replace(
        SDSC_PROFILE,
        weeks=20,
        anomalies=(
            AnomalyWindow(
                kind="reconfig",
                start_week=shift_week,
                end_week=shift_week + 2,
            ),
        ),
    )
    return RegimeSchedule(profile, default_catalog(), SeedSequencePool(seed))


class TestReconfigurationScenario:
    @pytest.mark.parametrize("seed", range(6))
    def test_reconfig_resamples_templates_wholesale(self, seed):
        """Property: across seeds, the reconfig boundary replaces
        (essentially) every chain template at conserved count, while
        ordinary gradual drift keeps a majority — the regime change is
        a jump, not a faster wobble."""
        sched = schedule_with_reconfig(seed)
        kept, added, removed = sched.template_churn(8, 10)
        total = kept + removed
        assert added == removed  # template count conserved
        assert kept <= total // 10  # wholesale resample (chance overlaps)
        kept_drift, _, _ = sched.template_churn(0, 8)
        assert kept_drift > kept  # gradual drift is nothing like it

    def test_pack_trace_has_single_shift(self):
        syn = RECONFIGURATION.generate(scale=SCALE)
        shift = RECONFIGURATION.shift_week
        kept, added, removed = syn.schedule.template_churn(
            shift - 1, shift + 1
        )
        assert kept == 0 and added == removed > 0
        # no other regime boundary anywhere in the trace
        pre = syn.schedule.template_churn(0, shift - 1)
        post = syn.schedule.template_churn(
            shift + 1, RECONFIGURATION.profile.weeks - 1
        )
        assert pre[1] == 0 and post[1] == 0


class TestMaintenanceScenario:
    @pytest.fixture(scope="class")
    def syn(self):
        return MAINTENANCE_WINDOW.generate(scale=SCALE)

    def window_weeks(self):
        anomaly = MAINTENANCE_WINDOW.profile.anomalies[0]
        return range(anomaly.start_week, anomaly.end_week)

    def test_no_precursor_backed_failures_in_window(self, syn):
        backed_weeks = {
            int(syn.fatal_times[i] // WEEK_SECONDS)
            for i in syn.precursor_backed
        }
        assert backed_weeks.isdisjoint(self.window_weeks())
        # silencing, not absence: backed failures exist on both sides
        assert any(w < min(self.window_weeks()) for w in backed_weeks)
        assert any(w > max(self.window_weeks()) for w in backed_weeks)

    def test_failures_continue_through_window(self, syn):
        fatal_weeks = {int(t // WEEK_SECONDS) for t in syn.fatal_times}
        assert set(self.window_weeks()) <= fatal_weeks

    def test_no_template_churn_at_window(self, syn):
        """The trap scenario changes *reporting*, never the pattern."""
        anomaly = MAINTENANCE_WINDOW.profile.anomalies[0]
        _, added, removed = syn.schedule.template_churn(
            anomaly.start_week - 1, anomaly.end_week + 1
        )
        assert added == removed == 0
