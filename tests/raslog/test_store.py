"""Unit and property tests for the EventLog store."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.raslog.events import Facility, Severity
from repro.raslog.store import EventLog
from repro.utils.timeutil import WEEK_SECONDS
from tests.conftest import make_event, make_log


class TestConstruction:
    def test_empty(self):
        log = EventLog()
        assert len(log) == 0
        assert log.span == (0.0, 0.0)
        assert log.n_weeks == 0

    def test_sorts_by_timestamp(self):
        log = make_log([(5.0, "b"), (1.0, "a"), (3.0, "c")])
        assert [e.timestamp for e in log] == [1.0, 3.0, 5.0]

    def test_stable_sort_preserves_ties(self):
        log = make_log([(1.0, "first"), (1.0, "second")])
        assert [e.entry_data for e in log] == ["first", "second"]

    def test_timestamps_read_only(self):
        log = make_log([(1.0, "a")])
        with pytest.raises(ValueError):
            log.timestamps[0] = 99.0

    def test_repr(self):
        assert "n=0" in repr(EventLog())
        assert "n=2" in repr(make_log([(1.0, "a"), (2.0, "b")]))


class TestIndexing:
    def test_getitem_int(self):
        log = make_log([(1.0, "a"), (2.0, "b")])
        assert log[0].entry_data == "a"
        assert log[-1].entry_data == "b"

    def test_getitem_slice_returns_log(self):
        log = make_log([(1.0, "a"), (2.0, "b"), (3.0, "c")])
        sub = log[1:]
        assert isinstance(sub, EventLog)
        assert len(sub) == 2
        assert sub[0].entry_data == "b"

    def test_stepped_slice_rejected(self):
        log = make_log([(1.0, "a"), (2.0, "b"), (3.0, "c")])
        with pytest.raises(ValueError, match="contiguous"):
            log[::2]

    def test_slice_shares_origin(self):
        log = make_log([(1.0, "a"), (2.0, "b")], origin=0.5)
        assert log[1:].origin == 0.5


class TestWindows:
    def test_between_half_open(self):
        log = make_log([(1.0, "a"), (2.0, "b"), (3.0, "c")])
        sub = log.between(1.0, 3.0)
        assert [e.entry_data for e in sub] == ["a", "b"]

    def test_between_empty_interval_rejected(self):
        log = make_log([(1.0, "a")])
        with pytest.raises(ValueError, match="empty interval"):
            log.between(3.0, 1.0)

    def test_window_before(self):
        log = make_log([(1.0, "a"), (5.0, "b"), (9.0, "c")])
        sub = log.window_before(9.0, 5.0)
        assert [e.entry_data for e in sub] == ["b"]

    def test_window_before_negative_width(self):
        with pytest.raises(ValueError, match="negative"):
            make_log([(1.0, "a")]).window_before(5.0, -1.0)

    def test_week_slicing(self):
        log = make_log(
            [(10.0, "w0"), (WEEK_SECONDS + 10.0, "w1"), (2 * WEEK_SECONDS + 10.0, "w2")]
        )
        assert [e.entry_data for e in log.week(1)] == ["w1"]
        assert [e.entry_data for e in log.slice_weeks(0, 2)] == ["w0", "w1"]

    def test_slice_weeks_empty_range_rejected(self):
        with pytest.raises(ValueError):
            make_log([(1.0, "a")]).slice_weeks(3, 2)

    def test_week_respects_origin(self):
        log = make_log([(WEEK_SECONDS + 5.0, "x")], origin=WEEK_SECONDS)
        assert len(log.week(0)) == 1
        assert log.n_weeks == 1


class TestFiltering:
    def test_filter_predicate(self):
        log = make_log([(1.0, "a"), (2.0, "b")])
        assert len(log.filter(lambda e: e.entry_data == "a")) == 1

    def test_select_codes(self):
        log = make_log([(1.0, "a"), (2.0, "b"), (3.0, "a")])
        assert len(log.select_codes({"a"})) == 2

    def test_fatal_nonfatal_partition(self, catalog):
        log = make_log(
            [
                (1.0, "KERNEL-F-000", {"severity": Severity.FATAL}),
                (2.0, "KERNEL-N-000", {"severity": Severity.INFO}),
                (3.0, "unknown-code", {}),
            ]
        )
        fatal = log.fatal(catalog)
        nonfatal = log.nonfatal(catalog)
        assert [e.entry_data for e in fatal] == ["KERNEL-F-000"]
        assert len(nonfatal) == 2
        assert len(fatal) + len(nonfatal) == len(log)


class TestAggregation:
    def test_counts_by_facility(self):
        log = make_log(
            [
                (1.0, "a", {"facility": Facility.APP}),
                (2.0, "b", {"facility": Facility.APP}),
                (3.0, "c", {"facility": Facility.KERNEL}),
            ]
        )
        counts = log.counts_by_facility()
        assert counts[Facility.APP] == 2
        assert counts[Facility.KERNEL] == 1

    def test_counts_by_code(self):
        log = make_log([(1.0, "a"), (2.0, "a"), (3.0, "b")])
        assert log.counts_by_code() == {"a": 2, "b": 1}

    def test_daily_counts(self):
        log = make_log([(10.0, "a"), (20.0, "b"), (86400.0 + 5, "c")])
        daily = log.daily_counts()
        assert list(daily) == [2, 1]

    def test_daily_counts_empty(self):
        assert len(EventLog().daily_counts()) == 0

    def test_daily_counts_event_before_origin_rejected(self):
        log = make_log([(10.0, "a")], origin=100.0)
        with pytest.raises(ValueError, match="before its origin"):
            log.daily_counts()

    def test_interarrivals(self):
        log = make_log([(1.0, "a"), (4.0, "b"), (9.0, "c")])
        assert list(log.interarrivals()) == [3.0, 5.0]

    def test_interarrivals_short(self):
        assert len(make_log([(1.0, "a")]).interarrivals()) == 0


class TestConcat:
    def test_merges_sorted(self):
        a = make_log([(1.0, "a"), (5.0, "c")])
        b = make_log([(3.0, "b")])
        merged = EventLog.concat([a, b])
        assert [e.entry_data for e in merged] == ["a", "b", "c"]

    def test_empty_input(self):
        assert len(EventLog.concat([])) == 0

    def test_origin_override(self):
        a = make_log([(1.0, "a")], origin=0.0)
        assert EventLog.concat([a], origin=42.0).origin == 42.0


@st.composite
def times_lists(draw):
    return draw(
        st.lists(
            st.floats(min_value=0.0, max_value=1e7, allow_nan=False),
            min_size=0,
            max_size=60,
        )
    )


class TestProperties:
    @given(times_lists())
    def test_always_sorted(self, times):
        log = make_log([(t, f"e{i}") for i, t in enumerate(times)])
        ts = log.timestamps
        assert np.all(np.diff(ts) >= 0)

    @given(times_lists(), st.floats(min_value=0, max_value=1e7), st.floats(min_value=0, max_value=1e7))
    def test_between_returns_exactly_range(self, times, a, b):
        lo, hi = min(a, b), max(a, b)
        log = make_log([(t, f"e{i}") for i, t in enumerate(times)])
        sub = log.between(lo, hi)
        assert all(lo <= e.timestamp < hi for e in sub)
        assert len(sub) == sum(1 for t in times if lo <= t < hi)

    @given(times_lists())
    def test_week_partition_covers_log(self, times):
        log = make_log([(t, f"e{i}") for i, t in enumerate(times)])
        total = sum(len(log.week(w)) for w in range(log.n_weeks))
        assert total == len(log)
