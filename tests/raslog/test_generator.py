"""Unit and statistical tests for the synthetic log generator."""

import dataclasses

import numpy as np
import pytest

from repro.raslog.events import Facility
from repro.raslog.generator import GeneratorConfig, LogGenerator, generate_log
from repro.raslog.profiles import ANL_PROFILE, SDSC_PROFILE
from repro.utils.timeutil import WEEK_SECONDS


class TestConfigValidation:
    def test_bad_scale(self):
        with pytest.raises(ValueError, match="scale"):
            GeneratorConfig(scale=0.0)

    def test_bad_weeks(self):
        with pytest.raises(ValueError, match="weeks"):
            GeneratorConfig(weeks=0)

    def test_bad_spread(self):
        with pytest.raises(ValueError, match="duplicate_spread"):
            GeneratorConfig(duplicate_spread=-1.0)


class TestDeterminism:
    def test_same_seed_same_trace(self):
        cfg = GeneratorConfig(scale=0.2, weeks=6, seed=11)
        a = generate_log(SDSC_PROFILE, cfg)
        b = generate_log(SDSC_PROFILE, cfg)
        assert np.array_equal(a.fatal_times, b.fatal_times)
        assert a.fatal_codes == b.fatal_codes
        assert len(a.clean) == len(b.clean)
        assert [e.entry_data for e in a.clean] == [e.entry_data for e in b.clean]

    def test_different_seed_differs(self):
        a = generate_log(SDSC_PROFILE, GeneratorConfig(scale=0.2, weeks=6, seed=1))
        b = generate_log(SDSC_PROFILE, GeneratorConfig(scale=0.2, weeks=6, seed=2))
        assert not np.array_equal(a.fatal_times, b.fatal_times)


class TestCleanStream:
    def test_within_duration(self, small_trace):
        duration = small_trace.profile.duration_seconds
        assert small_trace.clean.timestamps[0] >= 0
        assert small_trace.clean.timestamps[-1] < duration

    def test_entry_data_are_catalog_codes(self, small_trace):
        catalog = small_trace.catalog
        assert all(e.entry_data in catalog for e in small_trace.clean)

    def test_severity_matches_catalog_type(self, small_trace):
        catalog = small_trace.catalog
        for e in small_trace.clean:
            assert e.severity is catalog.get(e.entry_data).severity
            assert e.facility is catalog.get(e.entry_data).facility

    def test_fatal_events_match_ground_truth(self, small_trace):
        fatal = small_trace.clean.fatal(small_trace.catalog)
        assert len(fatal) == small_trace.n_fatal
        assert np.allclose(fatal.timestamps, small_trace.fatal_times)

    def test_fatal_codes_aligned(self, small_trace):
        assert len(small_trace.fatal_codes) == small_trace.n_fatal

    def test_fatal_rate_close_to_profile(self):
        syn = generate_log(
            SDSC_PROFILE, GeneratorConfig(scale=1.0, weeks=30, seed=3, duplicates=False)
        )
        # primary rate * cascade multiplier; loose 2x band, regime-modulated
        weekly = syn.n_fatal / 30
        assert 10 < weekly < 90

    def test_fake_fatals_present(self, small_trace):
        catalog = small_trace.catalog
        fakes = {t.code for t in catalog.fake_fatal_types()}
        assert any(e.entry_data in fakes for e in small_trace.clean)


class TestPrecursors:
    def test_backed_failures_have_precursors(self):
        syn = generate_log(
            SDSC_PROFILE, GeneratorConfig(scale=0.5, weeks=12, seed=8, duplicates=False)
        )
        lead_lo, lead_hi = syn.profile.precursor_lead
        nonfatal = syn.clean.nonfatal(syn.catalog)
        for idx in syn.precursor_backed[:20]:
            t = syn.fatal_times[idx]
            window = nonfatal.between(t - lead_hi - 1.0, t)
            assert len(window) >= 1

    def test_backed_fraction_near_profile(self):
        syn = generate_log(
            SDSC_PROFILE, GeneratorConfig(scale=1.0, weeks=30, seed=8, duplicates=False)
        )
        frac = len(syn.precursor_backed) / syn.n_fatal
        target = syn.profile.precursor_fraction
        assert 0.4 * target < frac < 1.6 * target

    def test_no_precursors_when_fraction_zero(self):
        profile = dataclasses.replace(
            SDSC_PROFILE, precursor_fraction=0.0, anomalies=()
        )
        syn = generate_log(
            profile, GeneratorConfig(scale=0.3, weeks=8, seed=1, duplicates=False)
        )
        assert syn.precursor_backed == []


class TestBursts:
    def test_cascades_create_close_failures(self):
        syn = generate_log(
            SDSC_PROFILE, GeneratorConfig(scale=1.0, weeks=30, seed=3, duplicates=False)
        )
        gaps = np.diff(syn.fatal_times)
        assert (gaps <= 300.0).mean() > 0.3  # Figure 4's close proximity

    def test_overall_interarrival_is_overdispersed(self):
        syn = generate_log(
            SDSC_PROFILE, GeneratorConfig(scale=1.0, weeks=30, seed=3, duplicates=False)
        )
        gaps = np.diff(syn.fatal_times)
        cv = gaps.std() / gaps.mean()
        assert cv > 1.2  # clustered, far from a renewal exponential (cv=1)


class TestRawStream:
    def test_raw_larger_than_clean(self, small_trace):
        assert len(small_trace.raw) > 2 * len(small_trace.clean)

    def test_raw_descriptions_not_codes(self, small_trace):
        catalog = small_trace.catalog
        assert all(e.entry_data not in catalog for e in small_trace.raw)

    def test_duplicates_share_job_id(self, small_trace):
        # every raw record's (job, description) pair traces to a clean event
        clean_pairs = {
            (e.job_id, small_trace.catalog.get(e.entry_data).description)
            for e in small_trace.clean
        }
        raw_pairs = {(e.job_id, e.entry_data) for e in small_trace.raw}
        assert raw_pairs <= clean_pairs

    def test_duplicates_spread_below_threshold(self, small_trace):
        spread = small_trace.config.duplicate_spread
        # per (job, description), max time spread stays within the cap
        by_key = {}
        for e in small_trace.raw:
            by_key.setdefault((e.job_id, e.entry_data), []).append(e.timestamp)
        clean_by_key = {}
        for e in small_trace.clean:
            desc = small_trace.catalog.get(e.entry_data).description
            clean_by_key.setdefault((e.job_id, desc), []).append(e.timestamp)
        for key, times in list(by_key.items())[:200]:
            origins = clean_by_key[key]
            for t in times:
                assert any(-1e-9 <= t - o <= spread + 1e-6 for o in origins)

    def test_duplicates_disabled(self):
        syn = generate_log(
            SDSC_PROFILE, GeneratorConfig(scale=0.2, weeks=4, seed=1, duplicates=False)
        )
        assert syn.raw is None

    def test_max_raw_events_guard(self):
        cfg = GeneratorConfig(scale=0.3, weeks=10, seed=42, max_raw_events=100)
        with pytest.raises(RuntimeError, match="max_raw_events"):
            generate_log(SDSC_PROFILE, cfg)

    def test_record_ids_sequential(self, small_trace):
        ids = [e.record_id for e in small_trace.raw[:500]]
        assert ids == list(range(500))


class TestAnomalies:
    def test_anl_storm_inflates_background(self):
        syn = generate_log(
            ANL_PROFILE, GeneratorConfig(scale=0.3, weeks=52, seed=6, duplicates=False)
        )
        nonfatal = syn.clean.nonfatal(syn.catalog)
        storm = syn.profile.anomalies[0]
        in_storm = len(
            nonfatal.slice_weeks(storm.start_week, storm.end_week)
        ) / (storm.end_week - storm.start_week)
        quiet = len(nonfatal.slice_weeks(20, 40)) / 20
        assert in_storm > 5 * quiet

    def test_facility_mix_kernel_heavy(self):
        syn = generate_log(
            ANL_PROFILE, GeneratorConfig(scale=0.3, weeks=20, seed=6, duplicates=False)
        )
        counts = syn.clean.counts_by_facility()
        assert counts[Facility.KERNEL] == max(counts.values())


class TestTopology:
    def test_locations_match_system_size(self):
        gen = LogGenerator(SDSC_PROFILE, GeneratorConfig(scale=0.1, weeks=2))
        locations = gen._build_locations()
        assert len(locations) == SDSC_PROFILE.racks * SDSC_PROFILE.midplanes_per_rack * 16
        assert all(loc.startswith("R") for loc in locations)

    def test_all_event_locations_valid(self, small_trace):
        gen = LogGenerator(small_trace.profile, small_trace.config)
        valid = set(gen._build_locations())
        assert {e.location for e in small_trace.clean} <= valid


class TestFloodEmission:
    def test_flooding_templates_emit_repeats(self):
        """Fatals whose template floods produce multiple copies of the
        first precursor inside the lead span."""
        syn = generate_log(
            SDSC_PROFILE, GeneratorConfig(scale=1.0, weeks=20, seed=8, duplicates=False)
        )
        nonfatal = syn.clean.nonfatal(syn.catalog)
        found_flood = False
        for idx in syn.precursor_backed:
            t = syn.fatal_times[idx]
            code = syn.fatal_codes[idx]
            regime = syn.schedule.regime_at(int(t // (7 * 86400)))
            template = regime.template_for(code)
            if template is None or template.flood_factor < 3:
                continue
            window = nonfatal.between(t - 7200.0, t)
            counts = {}
            for e in window:
                counts[e.entry_data] = counts.get(e.entry_data, 0) + 1
            if counts.get(template.precursors[0], 0) >= 2:
                found_flood = True
                break
        assert found_flood
