"""Unit tests for the Table 3 event catalog."""

import pytest

from repro.raslog.catalog import (
    TABLE3_COUNTS,
    TOTAL_FATAL_TYPES,
    TOTAL_NONFATAL_TYPES,
    EventCatalog,
    EventType,
    build_catalog,
    default_catalog,
)
from repro.raslog.events import Facility, Severity


class TestTable3Counts:
    def test_totals_match_paper(self, catalog):
        assert len(catalog.fatal_types()) == TOTAL_FATAL_TYPES == 69
        assert len(catalog.nonfatal_types()) == TOTAL_NONFATAL_TYPES == 150
        assert len(catalog) == 219

    def test_per_facility_counts(self, catalog):
        assert catalog.counts_by_facility() == TABLE3_COUNTS

    def test_kernel_dominates(self, catalog):
        fatal, nonfatal = catalog.counts_by_facility()[Facility.KERNEL]
        assert fatal == 46 and nonfatal == 90

    def test_linkcard_has_no_nonfatal(self, catalog):
        assert catalog.types_for(Facility.LINKCARD, fatal=False) == []


class TestEventType:
    def test_fatal_requires_fatal_severity(self):
        with pytest.raises(ValueError, match="FATAL/FAILURE severity"):
            EventType(
                code="X-F-000",
                facility=Facility.APP,
                severity=Severity.WARNING,
                description="x",
                fatal=True,
            )

    def test_fake_fatal_cannot_be_fatal(self):
        with pytest.raises(ValueError, match="both fatal and fake-fatal"):
            EventType(
                code="X-F-000",
                facility=Facility.APP,
                severity=Severity.FATAL,
                description="x",
                fatal=True,
                fake_fatal=True,
            )

    def test_fake_fatal_requires_fatal_severity(self):
        with pytest.raises(ValueError, match="FATAL/FAILURE severity"):
            EventType(
                code="X-N-000",
                facility=Facility.APP,
                severity=Severity.INFO,
                description="x",
                fatal=False,
                fake_fatal=True,
            )


class TestFakeFatals:
    def test_fake_fatals_exist(self, catalog):
        fakes = catalog.fake_fatal_types()
        assert len(fakes) >= 3

    def test_fake_fatals_are_nonfatal_with_fatal_severity(self, catalog):
        for t in catalog.fake_fatal_types():
            assert not t.fatal
            assert t.severity.is_fatal_class


class TestLookups:
    def test_get_by_code(self, catalog):
        t = catalog.get("KERNEL-F-000")
        assert t.facility is Facility.KERNEL
        assert t.fatal

    def test_get_unknown(self, catalog):
        with pytest.raises(KeyError, match="unknown event-type code"):
            catalog.get("NOPE-X-999")

    def test_contains(self, catalog):
        assert "KERNEL-F-000" in catalog
        assert "NOPE" not in catalog

    def test_index_dense_and_stable(self, catalog):
        indices = [catalog.index(t.code) for t in catalog]
        assert indices == list(range(len(catalog)))

    def test_index_unknown(self, catalog):
        with pytest.raises(KeyError):
            catalog.index("NOPE")

    def test_by_description(self, catalog):
        t = catalog.by_description(Facility.KERNEL, "uncorrectable torus error")
        assert t.fatal

    def test_by_description_unknown(self, catalog):
        with pytest.raises(KeyError):
            catalog.by_description(Facility.KERNEL, "no such thing")

    def test_is_fatal_code(self, catalog):
        assert catalog.is_fatal_code("KERNEL-F-001")
        assert not catalog.is_fatal_code("KERNEL-N-001")

    def test_paper_example_names_present(self, catalog):
        descriptions = {t.description for t in catalog}
        assert "uncorrectable torus error" in descriptions
        assert "uncorrectable error detected in edram bank" in descriptions


class TestBuildCatalog:
    def test_custom_counts(self):
        cat = build_catalog({Facility.APP: (2, 3)}, include_fake_fatals=False)
        assert len(cat) == 5
        assert len(cat.fatal_types()) == 2

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            build_catalog({Facility.APP: (-1, 0)})

    def test_duplicate_codes_rejected(self):
        t = EventType(
            code="A",
            facility=Facility.APP,
            severity=Severity.INFO,
            description="d",
            fatal=False,
        )
        with pytest.raises(ValueError, match="duplicate"):
            EventCatalog([t, t])

    def test_default_catalog_is_cached(self):
        assert default_catalog() is default_catalog()

    def test_codes_unique_across_facilities(self, catalog):
        codes = [t.code for t in catalog]
        assert len(codes) == len(set(codes))

    def test_without_fake_fatals(self):
        cat = build_catalog(include_fake_fatals=False)
        assert len(cat) == 219
        assert cat.fake_fatal_types() == []
