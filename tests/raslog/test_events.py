"""Unit tests for the RAS event model."""

import pytest

from repro.raslog.events import FACILITIES, Facility, RASEvent, Severity
from tests.conftest import make_event


class TestSeverity:
    def test_ordering(self):
        assert (
            Severity.INFO
            < Severity.WARNING
            < Severity.SEVERE
            < Severity.ERROR
            < Severity.FATAL
            < Severity.FAILURE
        )

    def test_fatal_class(self):
        assert Severity.FATAL.is_fatal_class
        assert Severity.FAILURE.is_fatal_class
        assert not Severity.ERROR.is_fatal_class
        assert not Severity.INFO.is_fatal_class

    def test_parse_case_insensitive(self):
        assert Severity.parse(" fatal ") is Severity.FATAL
        assert Severity.parse("Info") is Severity.INFO

    def test_parse_unknown(self):
        with pytest.raises(ValueError, match="unknown severity"):
            Severity.parse("CATASTROPHIC")


class TestFacility:
    def test_all_ten_facilities(self):
        assert len(FACILITIES) == 10

    def test_parse_variants(self):
        assert Facility.parse("kernel") is Facility.KERNEL
        assert Facility.parse("SERV-NET") is Facility.SERV_NET
        assert Facility.parse("serv net") is Facility.SERV_NET

    def test_parse_unknown(self):
        with pytest.raises(ValueError, match="unknown facility"):
            Facility.parse("FOO")


class TestRASEvent:
    def test_construction(self):
        e = make_event(10.0, "msg")
        assert e.timestamp == 10.0
        assert e.entry_data == "msg"

    def test_negative_timestamp_rejected(self):
        with pytest.raises(ValueError, match="negative timestamp"):
            make_event(-1.0)

    def test_negative_record_id_rejected(self):
        with pytest.raises(ValueError, match="negative record id"):
            make_event(1.0, record_id=-5)

    def test_frozen(self):
        e = make_event(1.0)
        with pytest.raises(AttributeError):
            e.timestamp = 2.0

    def test_is_fatal_class_follows_severity(self):
        assert make_event(1.0, severity=Severity.FAILURE).is_fatal_class
        assert not make_event(1.0, severity=Severity.WARNING).is_fatal_class

    def test_with_entry_data(self):
        e = make_event(1.0, "old")
        e2 = e.with_entry_data("new")
        assert e2.entry_data == "new"
        assert e.entry_data == "old"
        assert e2.timestamp == e.timestamp

    def test_with_timestamp(self):
        e = make_event(1.0)
        assert e.with_timestamp(9.0).timestamp == 9.0

    def test_as_dict_round_trips_fields(self):
        e = make_event(5.0, "x", facility=Facility.APP, severity=Severity.ERROR)
        d = e.as_dict()
        assert d["facility"] == "APP"
        assert d["severity"] == "ERROR"
        assert d["timestamp"] == 5.0
        assert set(d) == {
            "record_id",
            "event_type",
            "timestamp",
            "job_id",
            "location",
            "entry_data",
            "facility",
            "severity",
        }
