"""Unit tests for instrument and registry merging.

The merge path is how shard worker processes report their private
metric series back to the parent under the subprocess service backend,
so these tests pin its arithmetic directly: counters sum, gauges
last-write, histograms combine exact aggregates and resample the
reservoir union, and label sets — not rendered names — decide which
series collide.
"""

import pytest

from repro.observe.metrics import Counter, Gauge, Histogram
from repro.observe.registry import MetricsRegistry


class TestCounterMerge:
    def test_counts_sum(self):
        a, b = Counter("events"), Counter("events")
        a.inc(3)
        b.inc(4)
        a.merge(b.dump())
        assert a.value == 7.0

    def test_merge_of_zero_is_noop(self):
        a = Counter("events")
        a.inc(2)
        a.merge(Counter("events").dump())
        assert a.value == 2.0


class TestGaugeMerge:
    def test_last_write_wins(self):
        a, b = Gauge("depth"), Gauge("depth")
        a.set(10)
        b.set(3)
        a.merge(b.dump())
        assert a.value == 3.0


class TestHistogramMerge:
    def test_exact_aggregates_combine(self):
        a, b = Histogram("lat"), Histogram("lat")
        for v in (1.0, 2.0, 3.0):
            a.observe(v)
        for v in (0.5, 9.0):
            b.observe(v)
        a.merge(b.dump())
        assert a.count == 5
        assert a.sum == pytest.approx(15.5)
        snap = a.snapshot()
        assert snap["min"] == 0.5
        assert snap["max"] == 9.0

    def test_small_reservoirs_concatenate(self):
        # Union fits in capacity: the merge must keep every sample.
        a, b = Histogram("lat", reservoir_size=16), Histogram(
            "lat", reservoir_size=16
        )
        for v in (1.0, 2.0):
            a.observe(v)
        for v in (3.0, 4.0):
            b.observe(v)
        a.merge(b.dump())
        assert sorted(a.dump()["reservoir"]) == [1.0, 2.0, 3.0, 4.0]

    def test_overfull_merge_resamples_to_capacity(self):
        a, b = Histogram("lat", reservoir_size=8), Histogram(
            "lat", reservoir_size=8
        )
        for i in range(50):
            a.observe(float(i))
            b.observe(float(100 + i))
        a.merge(b.dump())
        reservoir = a.dump()["reservoir"]
        assert len(reservoir) == 8
        # Every retained sample came from one of the union streams.
        assert all(0 <= v < 50 or 100 <= v < 150 for v in reservoir)
        assert a.count == 100

    def test_merge_is_deterministic(self):
        # The RNG is seeded from the instrument name, so the same merge
        # performed twice keeps the same reservoir — worker metric
        # reports stay reproducible run-to-run.
        def merged():
            a, b = Histogram("lat", reservoir_size=8), Histogram(
                "lat", reservoir_size=8
            )
            for i in range(40):
                a.observe(float(i))
                b.observe(float(i) + 0.5)
            a.merge(b.dump())
            return a.dump()["reservoir"]

        assert merged() == merged()

    def test_empty_dump_is_noop(self):
        a = Histogram("lat")
        a.observe(2.0)
        a.merge(Histogram("lat").dump())
        assert a.count == 1
        assert a.snapshot()["min"] == 2.0


class TestRegistryMerge:
    def test_matching_series_merge_by_type(self):
        parent, worker = MetricsRegistry(), MetricsRegistry()
        parent.counter("service.events").inc(10)
        worker.counter("service.events").inc(5)
        worker.histogram("online.ingest").observe(0.25)
        parent.merge(worker.dump())
        snap = parent.snapshot()
        assert snap["service.events"]["value"] == 15.0
        # Series the parent never saw are created.
        assert snap["online.ingest"]["count"] == 1

    def test_label_sets_decide_collisions(self):
        parent = MetricsRegistry()
        parent.counter("service.events", shard="R00").inc(1)

        worker_a, worker_b = MetricsRegistry(), MetricsRegistry()
        # Same base name, same labels as the parent's series: must sum.
        worker_a.counter("service.events", shard="R00").inc(2)
        # Same base name, different label value: separate series.
        worker_b.counter("service.events", shard="R01").inc(7)
        parent.merge(worker_a.dump())
        parent.merge(worker_b.dump())

        snap = parent.snapshot()
        assert snap['service.events{shard="R00"}']["value"] == 3.0
        assert snap['service.events{shard="R01"}']["value"] == 7.0
        assert snap['service.events{shard="R00"}']["labels"] == {
            "shard": "R00"
        }

    def test_unknown_instrument_type_rejected(self):
        with pytest.raises(ValueError, match="cannot merge"):
            MetricsRegistry().merge(
                [{"name": "x", "labels": {}, "type": "mystery"}]
            )

    def test_merged_snapshot_does_not_mutate(self):
        parent, worker = MetricsRegistry(), MetricsRegistry()
        parent.counter("service.events").inc(1)
        worker.counter("service.events").inc(41)
        merged = parent.merged_snapshot([worker.dump()])
        assert merged["service.events"]["value"] == 42.0
        # The parent registry itself is a view source, never a sink.
        assert parent.snapshot()["service.events"]["value"] == 1.0

    def test_merged_snapshot_histogram_quantiles(self):
        parent, worker = MetricsRegistry(), MetricsRegistry()
        for v in range(10):
            parent.histogram("online.ingest").observe(float(v))
        for v in range(10, 20):
            worker.histogram("online.ingest").observe(float(v))
        merged = parent.merged_snapshot([worker.dump()])
        series = merged["online.ingest"]
        assert series["count"] == 20
        assert series["min"] == 0.0
        assert series["max"] == 19.0
        assert 0.0 <= series["p50"] <= 19.0
