"""Unit tests for the metrics/tracing subsystem."""

import json
import threading

import pytest

from repro.observe import (
    MetricsRegistry,
    counter,
    get_registry,
    labels_key,
    render_name,
    set_registry,
    span,
    use_registry,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = MetricsRegistry().counter("c")
        assert c.value == 0.0
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_rejects_negative_increment(self):
        with pytest.raises(ValueError, match="only go up"):
            MetricsRegistry().counter("c").inc(-1.0)

    def test_snapshot(self):
        c = MetricsRegistry().counter("c")
        c.inc(4)
        assert c.snapshot() == {"type": "counter", "value": 4.0}


class TestGauge:
    def test_set_and_add(self):
        g = MetricsRegistry().gauge("g")
        g.set(10.0)
        g.add(-3.0)
        assert g.value == 7.0
        assert g.snapshot() == {"type": "gauge", "value": 7.0}


class TestHistogram:
    def test_exact_stats(self):
        h = MetricsRegistry().histogram("h")
        for v in (1.0, 2.0, 3.0, 4.0):
            h.observe(v)
        snap = h.snapshot()
        assert snap["count"] == 4
        assert snap["sum"] == 10.0
        assert snap["mean"] == 2.5
        assert snap["min"] == 1.0
        assert snap["max"] == 4.0

    def test_quantiles_on_small_sample(self):
        h = MetricsRegistry().histogram("h")
        for v in range(100):
            h.observe(float(v))
        assert h.quantile(0.0) == 0.0
        assert h.quantile(1.0) == 99.0
        assert abs(h.quantile(0.5) - 50.0) <= 1.0

    def test_reservoir_bounds_memory(self):
        h = MetricsRegistry().histogram("h")
        for v in range(10_000):
            h.observe(float(v))
        assert h.count == 10_000
        assert len(h._reservoir) == h._capacity
        # The sampled p50 must land near the true median.
        assert 3_000 < h.quantile(0.5) < 7_000

    def test_empty_snapshot(self):
        h = MetricsRegistry().histogram("h")
        assert h.snapshot() == {"type": "histogram", "count": 0}
        assert h.quantile(0.5) == 0.0

    def test_invalid_quantile(self):
        with pytest.raises(ValueError, match="quantile"):
            MetricsRegistry().histogram("h").quantile(1.5)

    def test_per_second_throughput(self):
        h = MetricsRegistry().histogram("h")
        h.observe(0.5)
        h.observe(0.5)
        assert h.snapshot()["per_second"] == pytest.approx(2.0)

    def test_snapshot_consistent_under_concurrent_observes(self):
        # Regression: min/max used to be read after the lock was
        # released, so a snapshot taken during a concurrent observe()
        # could tear (e.g. a max belonging to a newer count than the
        # copied sum).  Every snapshot must be internally consistent.
        h = MetricsRegistry().histogram("h")
        stop = threading.Event()
        errors: list[AssertionError] = []

        def writer():
            v = 0
            while not stop.is_set():
                v += 1
                h.observe(float(v))

        def reader():
            while not stop.is_set():
                snap = h.snapshot()
                if not snap["count"]:
                    continue
                try:
                    assert snap["min"] <= snap["mean"] <= snap["max"]
                    assert snap["min"] <= snap["p50"] <= snap["max"]
                    # The writer's n-th observation has value n, so a
                    # consistent snapshot has max == count exactly; a
                    # torn one reads a newer max than the copied count.
                    assert snap["max"] == snap["count"]
                    assert snap["sum"] <= snap["count"] * snap["max"]
                except AssertionError as exc:  # pragma: no cover - failure
                    errors.append(exc)
                    return

        threads = [threading.Thread(target=writer)] + [
            threading.Thread(target=reader) for _ in range(2)
        ]
        for t in threads:
            t.start()
        threading.Event().wait(0.3)
        stop.set()
        for t in threads:
            t.join()
        assert not errors


class TestRegistry:
    def test_get_or_create_is_stable(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.histogram("b") is reg.histogram("b")

    def test_kind_clash_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError, match="Counter"):
            reg.gauge("x")

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            MetricsRegistry().counter("")

    def test_span_records_into_histogram(self):
        reg = MetricsRegistry()
        with reg.span("stage") as sp:
            pass
        assert sp.seconds >= 0.0
        assert reg.histogram("stage").count == 1

    def test_span_records_on_exception(self):
        reg = MetricsRegistry()
        with pytest.raises(RuntimeError):
            with reg.span("stage"):
                raise RuntimeError("boom")
        assert reg.histogram("stage").count == 1

    def test_span_reusable(self):
        reg = MetricsRegistry()
        sp = reg.span("stage")
        with sp:
            pass
        with sp:
            pass
        assert reg.histogram("stage").count == 2

    def test_timer_is_span(self):
        reg = MetricsRegistry()
        with reg.timer("t"):
            pass
        assert reg.histogram("t").count == 1

    def test_snapshot_and_json(self):
        reg = MetricsRegistry()
        reg.counter("a").inc()
        reg.gauge("b").set(2.0)
        snap = json.loads(reg.to_json())
        assert snap["a"]["value"] == 1.0
        assert snap["b"]["type"] == "gauge"

    def test_names_len_contains_reset(self):
        reg = MetricsRegistry()
        reg.counter("one")
        reg.counter("two")
        assert reg.names() == ["one", "two"]
        assert "one" in reg and len(reg) == 2
        reg.reset()
        assert len(reg) == 0

    def test_thread_safety_smoke(self):
        reg = MetricsRegistry()

        def work():
            for _ in range(1000):
                reg.counter("n").inc()
                reg.histogram("h").observe(1.0)

        threads = [threading.Thread(target=work) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert reg.counter("n").value == 4000
        assert reg.histogram("h").count == 4000


class TestLabels:
    def test_labels_create_independent_series(self):
        reg = MetricsRegistry()
        reg.counter("events", shard="a").inc(2)
        reg.counter("events", shard="b").inc(5)
        assert reg.counter("events", shard="a").value == 2
        assert reg.counter("events", shard="b").value == 5
        # ...and the unlabeled series is yet another instrument
        assert reg.counter("events").value == 0

    def test_label_order_is_canonical(self):
        reg = MetricsRegistry()
        first = reg.counter("c", a="1", b="2")
        second = reg.counter("c", b="2", a="1")
        assert first is second
        assert labels_key({"b": 2, "a": 1}) == (("a", "1"), ("b", "2"))

    def test_rendered_names(self):
        assert render_name("plain") == "plain"
        assert (
            render_name("c", (("shard", "R01"),)) == 'c{shard="R01"}'
        )
        reg = MetricsRegistry()
        reg.counter("c", shard="R01")
        assert reg.names() == ['c{shard="R01"}']
        assert "c" in reg and 'c{shard="R01"}' in reg

    def test_empty_label_name_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            MetricsRegistry().counter("c", **{"": "v"})

    def test_snapshot_flat_for_unlabeled_nested_for_labeled(self):
        reg = MetricsRegistry()
        reg.counter("plain").inc()
        reg.counter("sharded", shard="a").inc()
        snap = reg.snapshot()
        assert "labels" not in snap["plain"]
        assert snap['sharded{shard="a"}']["labels"] == {"shard": "a"}

    def test_snapshot_order_deterministic(self):
        """Series are ordered by metric name, then label set, regardless
        of creation order — two runs of the same workload export
        byte-identical JSON."""
        reg = MetricsRegistry()
        reg.counter("z").inc()
        reg.counter("a", shard="b").inc()
        reg.counter("a", shard="a").inc()
        reg.counter("a").inc()
        assert list(reg.snapshot()) == [
            "a",
            'a{shard="a"}',
            'a{shard="b"}',
            "z",
        ]
        assert reg.to_json() == reg.to_json()

    def test_series_lookup(self):
        reg = MetricsRegistry()
        reg.counter("c", shard="a").inc(1)
        reg.counter("c", shard="b").inc(2)
        reg.counter("other").inc()
        series = reg.series("c")
        assert [labels for labels, _ in series] == [
            {"shard": "a"},
            {"shard": "b"},
        ]
        assert [inst.value for _, inst in series] == [1, 2]

    def test_labeled_span_and_kind_clash(self):
        reg = MetricsRegistry()
        with reg.span("stage", shard="a"):
            pass
        assert reg.histogram("stage", shard="a").count == 1
        with pytest.raises(TypeError, match="Histogram"):
            reg.counter("stage", shard="a")

    def test_module_helpers_accept_labels(self):
        reg = MetricsRegistry()
        with use_registry(reg):
            counter("hits", shard="x").inc()
        assert reg.counter("hits", shard="x").value == 1.0


class TestDefaultRegistry:
    def test_module_helpers_hit_current_registry(self):
        reg = MetricsRegistry()
        with use_registry(reg):
            counter("hits").inc()
            with span("work"):
                pass
        assert reg.counter("hits").value == 1.0
        assert reg.histogram("work").count == 1
        # ... and nothing leaked once the scope closed.
        assert "hits" not in get_registry()

    def test_use_registry_restores_on_exception(self):
        before = get_registry()
        with pytest.raises(RuntimeError):
            with use_registry(MetricsRegistry()):
                raise RuntimeError("boom")
        assert get_registry() is before

    def test_set_registry_returns_previous(self):
        fresh = MetricsRegistry()
        previous = set_registry(fresh)
        try:
            assert get_registry() is fresh
        finally:
            set_registry(previous)
