"""Checkpoint/resume: crash-recovery equivalence and file hardening.

The headline contract: a session killed mid-stream and resumed from its
last checkpoint continues *warning-for-warning identically* to one that
never stopped, and its final :class:`SessionSummary` matches exactly
(no double counting, no lost accounting).
"""

import dataclasses
import json
import os
import stat as stat_module

import pytest

from repro.core.framework import FrameworkConfig
from repro.core.online import OnlinePredictionSession
from repro.resilience import (
    CHECKPOINT_FORMAT,
    CHECKPOINT_VERSION,
    CheckpointError,
    EventJournal,
    atomic_write_json,
    config_digest,
    config_from_dict,
    config_to_dict,
    read_checkpoint,
)
from tests.conftest import make_event


def stream(session, events):
    for event in events:
        session.ingest(event)
    return session


def run_uninterrupted(log, config, catalog):
    return stream(OnlinePredictionSession(config, catalog=catalog), log)


def assert_summaries_equal(got, want):
    assert got.n_events == want.n_events
    assert got.n_fatal == want.n_fatal
    assert got.n_warnings == want.n_warnings
    assert got.n_quarantined == want.n_quarantined
    assert [r.week for r in got.retrains] == [r.week for r in want.retrains]
    assert got.retrain_failures == want.retrain_failures
    assert got.matching.true_positives == want.matching.true_positives
    assert got.matching.false_positives == want.matching.false_positives
    assert got.matching.false_negatives == want.matching.false_negatives
    assert got.precision == want.precision
    assert got.recall == want.recall


class TestCrashRecovery:
    @pytest.fixture(scope="class")
    def reference(self, small_log, small_config, catalog):
        return run_uninterrupted(small_log, small_config, catalog)

    @pytest.mark.parametrize("fraction", [0.3, 0.6, 0.9])
    def test_resume_is_warning_for_warning_identical(
        self, small_log, small_config, catalog, reference, tmp_path, fraction
    ):
        """Kill mid-stream, resume, finish: identical warning stream."""
        events = list(small_log)
        cut = int(len(events) * fraction)
        first = stream(
            OnlinePredictionSession(small_config, catalog=catalog),
            events[:cut],
        )
        path = tmp_path / "session.ckpt"
        first.checkpoint(path)
        # a real crash loses everything after the checkpoint
        del first

        resumed = OnlinePredictionSession.resume(
            path, small_config, catalog=catalog
        )
        stream(resumed, events[resumed.n_ingested:])
        assert resumed.warnings == reference.warnings
        assert_summaries_equal(resumed.summary(), reference.summary())

    def test_summary_not_double_counted_across_two_resumes(
        self, small_log, small_config, catalog, reference, tmp_path
    ):
        """Regression: resuming twice must not inflate any summary count."""
        events = list(small_log)
        path = tmp_path / "session.ckpt"
        session = OnlinePredictionSession(small_config, catalog=catalog)
        for stop in (len(events) // 3, 2 * len(events) // 3):
            stream(session, events[session.n_ingested:stop])
            session.checkpoint(path)
            session = OnlinePredictionSession.resume(
                path, small_config, catalog=catalog
            )
        stream(session, events[session.n_ingested:])
        assert session.warnings == reference.warnings
        assert_summaries_equal(session.summary(), reference.summary())

    def test_checkpoint_during_initial_training(
        self, small_log, small_config, catalog, reference, tmp_path
    ):
        """A checkpoint taken before the first retraining (no predictor
        yet) resumes into the same final state."""
        events = list(small_log)
        boundary = 2 * 604_800.0
        cut = next(i for i, e in enumerate(events) if e.timestamp > boundary / 2)
        first = stream(
            OnlinePredictionSession(small_config, catalog=catalog),
            events[:cut],
        )
        assert not first.started
        path = tmp_path / "early.ckpt"
        first.checkpoint(path)
        resumed = OnlinePredictionSession.resume(
            path, small_config, catalog=catalog
        )
        assert not resumed.started
        stream(resumed, events[resumed.n_ingested:])
        assert resumed.warnings == reference.warnings
        assert_summaries_equal(resumed.summary(), reference.summary())

    def test_resume_without_explicit_config(
        self, small_log, small_config, catalog, tmp_path
    ):
        """The checkpoint carries its config; resume(path) alone works."""
        events = list(small_log)
        first = stream(
            OnlinePredictionSession(small_config, catalog=catalog),
            events[: len(events) // 2],
        )
        path = tmp_path / "session.ckpt"
        first.checkpoint(path)
        resumed = OnlinePredictionSession.resume(path, catalog=catalog)
        assert resumed.config == small_config
        assert resumed.n_ingested == first.n_ingested


class TestFileHardening:
    def checkpointed(self, small_log, small_config, catalog, path):
        events = list(small_log)
        session = stream(
            OnlinePredictionSession(small_config, catalog=catalog),
            events[: len(events) // 2],
        )
        session.checkpoint(path)
        return session

    def test_version_mismatch_rejected(
        self, small_log, small_config, catalog, tmp_path
    ):
        path = tmp_path / "session.ckpt"
        self.checkpointed(small_log, small_config, catalog, path)
        payload = json.loads(path.read_text())
        payload["version"] = CHECKPOINT_VERSION + 1
        path.write_text(json.dumps(payload))
        with pytest.raises(CheckpointError, match="version"):
            OnlinePredictionSession.resume(path, small_config, catalog=catalog)

    def test_foreign_json_rejected(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"hello": "world"}))
        with pytest.raises(CheckpointError, match=CHECKPOINT_FORMAT):
            read_checkpoint(path)

    def test_torn_file_rejected(self, tmp_path):
        path = tmp_path / "torn.ckpt"
        path.write_text('{"format": "repro-session-ch')
        with pytest.raises(CheckpointError, match="JSON"):
            read_checkpoint(path)

    def test_config_digest_mismatch_rejected(
        self, small_log, small_config, catalog, tmp_path
    ):
        """Resuming under different semantics must fail loudly."""
        path = tmp_path / "session.ckpt"
        self.checkpointed(small_log, small_config, catalog, path)
        other = FrameworkConfig(
            initial_train_weeks=2, retrain_weeks=2, prediction_window=600.0
        )
        with pytest.raises(CheckpointError, match="digest"):
            OnlinePredictionSession.resume(path, other, catalog=catalog)

    def test_atomic_write_preserves_previous_on_failure(self, tmp_path):
        """A failed write leaves the previous checkpoint intact."""
        path = tmp_path / "session.ckpt"
        atomic_write_json(path, {"format": CHECKPOINT_FORMAT, "n": 1})
        with pytest.raises(TypeError):
            atomic_write_json(path, {"bad": object()})
        assert json.loads(path.read_text())["n"] == 1
        assert list(tmp_path.iterdir()) == [path]  # no stray temp files

    def test_checkpoint_is_strict_json_before_first_event(
        self, catalog, tmp_path
    ):
        """A fresh slack session's checkpoint must be parseable JSON.

        Reorder ``max_seen`` is ``-inf`` until the first event;
        ``json.dump`` would emit the non-standard token ``-Infinity``
        that strict parsers (jq, other languages) reject.
        """
        config = FrameworkConfig(
            initial_train_weeks=2, retrain_weeks=2, reorder_slack=300.0
        )
        session = OnlinePredictionSession(config, catalog=catalog)
        path = tmp_path / "fresh.ckpt"
        session.checkpoint(path)
        text = path.read_text()
        assert "Infinity" not in text
        json.loads(
            text,
            parse_constant=lambda s: pytest.fail(
                f"non-standard JSON constant {s!r} in checkpoint"
            ),
        )
        resumed = OnlinePredictionSession.resume(path, catalog=catalog)
        assert resumed._reorder is not None
        assert resumed._reorder.max_seen == float("-inf")
        resumed.ingest(small_event := make_event(500.0, "KERNEL-N-000"))
        assert resumed._reorder.max_seen == small_event.timestamp

    def test_config_round_trips_through_dict(self, small_config):
        clone = config_from_dict(config_to_dict(small_config))
        assert config_digest(clone) == config_digest(small_config)
        degraded = dataclasses.replace(small_config, on_retrain_error="degrade")
        assert config_digest(degraded) != config_digest(small_config)

    def test_atomic_write_fsyncs_file_then_directory(
        self, tmp_path, monkeypatch
    ):
        """Durability fd discipline: the temp file must be fsynced before
        the rename, and the parent *directory* after it — without the
        directory fsync a power loss can make the checkpoint vanish."""
        synced = []
        real_fsync = os.fsync

        def spy(fd):
            synced.append(stat_module.S_ISDIR(os.fstat(fd).st_mode))
            return real_fsync(fd)

        monkeypatch.setattr(os, "fsync", spy)
        atomic_write_json(tmp_path / "s.ckpt", {"format": CHECKPOINT_FORMAT})
        assert True in synced and False in synced
        # The file fsync happens strictly before the directory fsync
        # (fsyncing the dir entry of a not-yet-durable file is useless).
        assert synced.index(False) < synced.index(True)

    def test_v1_checkpoint_still_readable(
        self, small_log, small_config, catalog, tmp_path
    ):
        """Pre-journal (v1) checkpoints resume fine: the journal field
        simply is not there."""
        path = tmp_path / "session.ckpt"
        self.checkpointed(small_log, small_config, catalog, path)
        payload = json.loads(path.read_text())
        assert payload["version"] == CHECKPOINT_VERSION == 3
        payload["version"] = 1
        del payload["journal"]
        del payload["adapt"]
        path.write_text(json.dumps(payload))
        resumed = OnlinePredictionSession.resume(
            path, small_config, catalog=catalog
        )
        assert resumed.n_ingested > 0


class TestJournalPosition:
    def test_checkpoint_records_journal_position(
        self, small_log, small_config, catalog, tmp_path
    ):
        events = list(small_log)
        journal = EventJournal(tmp_path / "wal", fsync="never")
        session = OnlinePredictionSession(
            small_config, catalog=catalog, journal=journal
        )
        for event in events[:40]:
            session.ingest(event)
        payload = session.checkpoint(tmp_path / "s.ckpt")
        assert payload["journal"] == {"position": 40}
        assert journal.position == 40
        journal.close()

    def test_journalless_checkpoint_records_null(
        self, small_log, small_config, catalog, tmp_path
    ):
        session = OnlinePredictionSession(small_config, catalog=catalog)
        for event in list(small_log)[:10]:
            session.ingest(event)
        payload = session.checkpoint(tmp_path / "s.ckpt")
        assert payload["journal"] is None

    def test_unaligned_journal_rejected(
        self, small_log, small_config, catalog, tmp_path
    ):
        """A checkpoint with no recorded position must not guess where
        replay starts when the journal is non-empty."""
        events = list(small_log)
        path = tmp_path / "s.ckpt"
        session = OnlinePredictionSession(small_config, catalog=catalog)
        for event in events[:30]:
            session.ingest(event)
        session.checkpoint(path)  # journal-less: position is null
        journal = EventJournal(tmp_path / "wal", fsync="never")
        journal.append({"kind": "ingest", "event": events[30].as_dict()})
        with pytest.raises(CheckpointError, match="journal position"):
            OnlinePredictionSession.resume(
                path, small_config, catalog=catalog, journal=journal
            )
        journal.close()

    def test_checkpoint_ahead_of_journal_realigns(
        self, small_log, small_config, catalog, tmp_path
    ):
        """Power loss under fsync='never' can lose journal appends that
        the (always-fsynced) checkpoint covers; recovery realigns the
        journal to the checkpoint position and continues."""
        events = list(small_log)
        path = tmp_path / "s.ckpt"
        journal = EventJournal(tmp_path / "wal", fsync="never")
        session = OnlinePredictionSession(
            small_config, catalog=catalog, journal=journal
        )
        for event in events[:25]:
            session.ingest(event)
        session.checkpoint(path)
        journal.close()
        # Simulate the page-cache loss: wipe the journal directory.
        for segment in (tmp_path / "wal").iterdir():
            segment.unlink()
        fresh = EventJournal(tmp_path / "wal", fsync="never")
        assert fresh.position == 0
        resumed = OnlinePredictionSession.resume(
            path, small_config, catalog=catalog, journal=fresh
        )
        assert resumed.n_ingested == 25
        assert fresh.position == 25  # realigned, indices stay monotonic
        resumed.ingest(events[25])
        assert fresh.position == 26
        fresh.close()
