"""EventJournal: framing, fsync policy, rotation, compaction, corruption.

The corruption-tolerance contract in one place: a *torn tail* (the
record a crash interrupted) is truncated and counted; a CRC mismatch on
a *complete* record — bit rot — raises :class:`JournalCorruption` naming
the segment and offset, because replaying past it would silently diverge
from the pre-crash session.
"""

from __future__ import annotations

import json
import os
import struct
import zlib

import pytest

from repro import faults, observe
from repro.faults import FaultInjected, FaultPlan, JournalFault
from repro.resilience import EventJournal, JournalCorruption, JournalError
from repro.resilience.journal import parse_fsync_policy


def records(n, start=0):
    return [{"kind": "ingest", "i": i} for i in range(start, start + n)]


def fill(journal, n, start=0):
    for record in records(n, start):
        journal.append(record)


class TestFraming:
    def test_append_replay_round_trip(self, tmp_path):
        with EventJournal(tmp_path / "wal") as journal:
            fill(journal, 5)
            assert journal.position == 5
        reopened = EventJournal(tmp_path / "wal")
        assert reopened.position == 5
        assert list(reopened.replay()) == list(enumerate(records(5)))
        reopened.close()

    def test_replay_from_position_skips_prefix(self, tmp_path):
        with EventJournal(tmp_path / "wal") as journal:
            fill(journal, 10)
            got = list(journal.replay(7))
        assert [i for i, _ in got] == [7, 8, 9]
        assert [r["i"] for _, r in got] == [7, 8, 9]

    def test_append_after_close_raises(self, tmp_path):
        journal = EventJournal(tmp_path / "wal")
        journal.close()
        assert journal.closed
        with pytest.raises(JournalError, match="closed"):
            journal.append({"kind": "ingest"})

    def test_fresh_directory_starts_at_zero(self, tmp_path):
        journal = EventJournal(tmp_path / "brand-new")
        assert journal.position == 0
        assert list(journal.replay()) == []
        journal.close()


class TestFsyncPolicy:
    @pytest.mark.parametrize("bad", ["0", "-3", "sometimes", "", "1.5"])
    def test_invalid_policies_rejected(self, bad):
        with pytest.raises(ValueError):
            parse_fsync_policy(bad)

    @pytest.mark.parametrize(
        "value, parsed", [("always", "always"), ("never", "never"), ("7", 7)]
    )
    def test_valid_policies(self, value, parsed):
        assert parse_fsync_policy(value) == parsed

    def test_always_fsyncs_every_append(self, tmp_path):
        registry = observe.MetricsRegistry()
        with observe.use_registry(registry):
            with EventJournal(tmp_path / "wal", fsync="always") as journal:
                fill(journal, 4)
        assert registry.counter("journal.appends").value == 4
        assert registry.counter("journal.fsyncs").value >= 4

    def test_interval_policy_batches_fsyncs(self, tmp_path):
        registry = observe.MetricsRegistry()
        with observe.use_registry(registry):
            journal = EventJournal(tmp_path / "wal", fsync=5)
            fill(journal, 14)
            # 14 appends = 2 full batches of 5; close() forces the rest.
            assert registry.counter("journal.fsyncs").value == 2
            journal.close()
            assert registry.counter("journal.fsyncs").value == 3

    def test_never_policy_never_fsyncs(self, tmp_path):
        registry = observe.MetricsRegistry()
        with observe.use_registry(registry):
            with EventJournal(tmp_path / "wal", fsync="never") as journal:
                fill(journal, 10)
        assert registry.counter("journal.fsyncs").value == 0


class TestRotationAndCompaction:
    def test_rotation_by_size(self, tmp_path):
        with EventJournal(
            tmp_path / "wal", fsync="never", segment_bytes=128
        ) as journal:
            fill(journal, 20)
        segments = sorted(p.name for p in (tmp_path / "wal").iterdir())
        assert len(segments) > 1
        # Segment names carry the global index of their first record.
        reopened = EventJournal(tmp_path / "wal", fsync="never")
        assert reopened.position == 20
        assert [r["i"] for _, r in reopened.replay()] == list(range(20))
        reopened.close()

    def test_compaction_drops_covered_segments_only(self, tmp_path):
        journal = EventJournal(
            tmp_path / "wal", fsync="never", segment_bytes=128
        )
        fill(journal, 20)
        n_before = len(list((tmp_path / "wal").iterdir()))
        assert n_before > 2
        removed = journal.compact(journal.position)
        assert removed == n_before - 1  # the active tail always stays
        # Records past a mid-stream position all survive compaction.
        journal2_dir = tmp_path / "wal2"
        journal2 = EventJournal(journal2_dir, fsync="never", segment_bytes=128)
        fill(journal2, 20)
        journal2.compact(10)
        survivors = [i for i, _ in journal2.replay(10)]
        assert survivors == list(range(10, 20))
        journal.close()
        journal2.close()

    def test_recovery_after_compaction_replays_only_post_checkpoint(
        self, tmp_path
    ):
        """Compaction must never eat records a checkpoint does not cover."""
        journal = EventJournal(
            tmp_path / "wal", fsync="never", segment_bytes=96
        )
        fill(journal, 30)
        checkpoint_position = 18
        journal.compact(checkpoint_position)
        journal.close()
        reopened = EventJournal(tmp_path / "wal", fsync="never")
        assert reopened.position == 30
        replayed = [i for i, _ in reopened.replay(checkpoint_position)]
        assert replayed == list(range(checkpoint_position, 30))
        reopened.close()

    def test_reset_position_rotates_forward(self, tmp_path):
        journal = EventJournal(tmp_path / "wal", fsync="never")
        fill(journal, 3)
        journal.reset_position(10)
        assert journal.position == 10
        fill(journal, 2, start=10)
        assert [i for i, _ in journal.replay(10)] == [10, 11]
        with pytest.raises(JournalError, match="backwards"):
            journal.reset_position(4)
        journal.close()


def tail_segment(directory):
    return max(directory.iterdir(), key=lambda p: p.name)


class TestCorruptionTolerance:
    def test_torn_tail_is_truncated_and_counted(self, tmp_path):
        with EventJournal(tmp_path / "wal", fsync="never") as journal:
            fill(journal, 6)
        segment = tail_segment(tmp_path / "wal")
        intact = segment.stat().st_size
        # Tear the last record mid-payload, as a crash would.
        with open(segment, "r+b") as fh:
            fh.truncate(intact - 5)
        registry = observe.MetricsRegistry()
        with observe.use_registry(registry):
            reopened = EventJournal(tmp_path / "wal", fsync="never")
        assert reopened.n_torn_truncated == 1
        assert registry.counter("journal.torn_tail_truncated").value == 1
        assert reopened.position == 5
        assert [r["i"] for _, r in reopened.replay()] == list(range(5))
        # The file itself was truncated back to the committed prefix.
        assert segment.stat().st_size < intact - 5
        reopened.close()

    def test_torn_header_is_truncated(self, tmp_path):
        with EventJournal(tmp_path / "wal", fsync="never") as journal:
            fill(journal, 3)
        segment = tail_segment(tmp_path / "wal")
        with open(segment, "ab") as fh:
            fh.write(b"\x07\x00")  # 2 of 8 header bytes
        reopened = EventJournal(tmp_path / "wal", fsync="never")
        assert reopened.position == 3
        assert reopened.n_torn_truncated == 1
        reopened.close()

    def test_mid_journal_crc_mismatch_reports_segment_and_offset(
        self, tmp_path
    ):
        with EventJournal(tmp_path / "wal", fsync="never") as journal:
            fill(journal, 6)
        segment = tail_segment(tmp_path / "wal")
        data = bytearray(segment.read_bytes())
        # Corrupt one payload byte of the *third* record (a complete,
        # mid-journal record — bit rot, not a torn write).
        offset = 0
        for _ in range(2):
            length = struct.unpack_from("<I", data, offset)[0]
            offset += 8 + length
        data[offset + 8] ^= 0x40
        segment.write_bytes(bytes(data))
        with pytest.raises(JournalCorruption, match="CRC32") as excinfo:
            EventJournal(tmp_path / "wal", fsync="never")
        assert excinfo.value.segment == segment.name
        assert excinfo.value.offset == offset
        assert segment.name in str(excinfo.value)

    def test_anomaly_in_sealed_segment_is_corruption(self, tmp_path):
        """A short record is a torn tail only in the *newest* segment;
        inside a sealed segment it means the log was tampered with."""
        with EventJournal(
            tmp_path / "wal", fsync="never", segment_bytes=64
        ) as journal:
            fill(journal, 8)
        segments = sorted((tmp_path / "wal").iterdir())
        assert len(segments) > 1
        first = segments[0]
        with open(first, "r+b") as fh:
            fh.truncate(first.stat().st_size - 3)
        journal = EventJournal(tmp_path / "wal", fsync="never")
        with pytest.raises(JournalCorruption, match="sealed"):
            list(journal.replay())
        journal.close()

    def test_implausible_length_is_corruption(self, tmp_path):
        with EventJournal(tmp_path / "wal", fsync="never") as journal:
            fill(journal, 2)
        segment = tail_segment(tmp_path / "wal")
        payload = json.dumps({"x": 1}).encode()
        bogus = struct.pack("<II", 1 << 30, zlib.crc32(payload)) + payload
        with open(segment, "ab") as fh:
            fh.write(bogus)
        with pytest.raises(JournalCorruption, match="length"):
            EventJournal(tmp_path / "wal", fsync="never")


class TestFaultInjection:
    def test_torn_write_fault_kills_journal_and_leaves_partial_bytes(
        self, tmp_path
    ):
        journal = EventJournal(tmp_path / "wal", fsync="never")
        plan = FaultPlan(
            journal_faults=[JournalFault(record=2, mode="torn", keep_bytes=9)]
        )
        with faults.install(plan):
            fill(journal, 2)
            with pytest.raises(FaultInjected, match="torn write"):
                journal.append({"kind": "ingest", "i": 2})
        assert plan.injected == ["journal:torn:2"]
        assert journal.closed  # the simulated crash killed it
        reopened = EventJournal(tmp_path / "wal", fsync="never")
        assert reopened.n_torn_truncated == 1
        assert reopened.position == 2
        reopened.close()

    def test_bitflip_fault_succeeds_then_fails_validation(self, tmp_path):
        journal = EventJournal(tmp_path / "wal", fsync="never")
        plan = FaultPlan(
            journal_faults=[JournalFault(record=1, mode="bitflip")]
        )
        with faults.install(plan):
            fill(journal, 4)  # the flipped append does not raise
        assert journal.position == 4
        assert plan.injected == ["journal:bitflip:1"]
        journal.close()
        with pytest.raises(JournalCorruption, match="CRC32"):
            EventJournal(tmp_path / "wal", fsync="never")

    def test_unknown_fault_mode_rejected(self):
        with pytest.raises(ValueError, match="mode"):
            JournalFault(record=0, mode="gamma-ray")

    def test_no_plan_appends_clean(self, tmp_path):
        assert faults.active() is None
        with EventJournal(tmp_path / "wal", fsync="never") as journal:
            fill(journal, 3)
            assert journal.position == 3


class TestDurabilityDiscipline:
    def test_append_is_a_raw_os_write(self, tmp_path, monkeypatch):
        """Appends must hit the kernel immediately (no user-space
        buffering): what ``append`` returned for survives a process
        kill even under ``fsync='never'``."""
        writes = []
        real_write = os.write

        def spy(fd, data):
            writes.append(data)
            return real_write(fd, data)

        monkeypatch.setattr(os, "write", spy)
        journal = EventJournal(tmp_path / "wal", fsync="never")
        journal.append({"kind": "ingest", "i": 0})
        assert len(writes) == 1
        length, crc = struct.unpack_from("<II", writes[0], 0)
        payload = writes[0][8:]
        assert len(payload) == length
        assert zlib.crc32(payload) == crc
        # No close, no flush — the bytes are already re-readable.
        fresh = EventJournal(tmp_path / "wal", fsync="never")
        assert fresh.position == 1
