"""Shared fixtures for the resilience tests: a small deterministic
trace with a stationary A -> B -> FATAL pattern that trains real rules
in a couple of seconds."""

from __future__ import annotations

import pytest

from repro.core.framework import FrameworkConfig
from repro.utils.timeutil import WEEK_SECONDS
from tests.conftest import make_log

PRECURSOR_A = "KERNEL-N-002"
PRECURSOR_B = "KERNEL-N-003"
FATAL = "KERNEL-F-000"


def pattern_log(weeks: int = 8):
    """A -> B -> FATAL every three hours for ``weeks`` weeks."""
    period = 10_800.0
    specs = []
    t = 600.0
    while t + 120.0 < weeks * WEEK_SECONDS:
        specs += [(t, PRECURSOR_A), (t + 60.0, PRECURSOR_B), (t + 120.0, FATAL)]
        t += period
    return make_log(specs)


@pytest.fixture(scope="package")
def small_log():
    return pattern_log()


@pytest.fixture(scope="package")
def small_config():
    return FrameworkConfig(initial_train_weeks=2, retrain_weeks=2)
