"""Batched journal appends: group commit, replay and ingest_batch.

``EventJournal.append_batch`` frames a whole batch into one ``os.write``
and makes it durable with one group fsync — the throughput path measured
by the ``journal_append`` bench suite.  These tests pin its contract:
byte-compatible with per-record appends on replay, one fsync per batch
under ``fsync="always"``, torn tails recovered exactly like single
appends, and the ``ingest_batch`` plumbing through the session stack
stays warning-for-warning equal to per-event ingest.
"""

from __future__ import annotations

import pytest

from repro import observe
from repro.core.framework import FrameworkConfig
from repro.core.online import OnlinePredictionSession
from repro.raslog.catalog import default_catalog
from repro.raslog.generator import GeneratorConfig, generate_log
from repro.raslog.profiles import SDSC_PROFILE
from repro.resilience import EventJournal, JournalError


def records(n, start=0):
    return [{"kind": "ingest", "i": i} for i in range(start, start + n)]


class TestAppendBatch:
    def test_replay_equals_per_record_appends(self, tmp_path):
        with EventJournal(tmp_path / "single") as single:
            for record in records(10):
                single.append(record)
            per_record = list(single.replay())
        with EventJournal(tmp_path / "batched") as batched:
            batched.append_batch(records(4))
            batched.append_batch(records(6, start=4))
            assert batched.position == 10
            assert list(batched.replay()) == per_record

    def test_one_group_fsync_per_batch(self, tmp_path):
        registry = observe.MetricsRegistry()
        with observe.use_registry(registry):
            journal = EventJournal(tmp_path / "wal", fsync="always")
            journal.append_batch(records(64))
            journal.append_batch(records(64, start=64))
            appends = registry.counter("journal.appends").value
            # Group commit: 2 batches -> 2 fsyncs, not 128 (close() adds
            # its own final fsync, so count before closing).
            fsyncs = registry.counter("journal.fsyncs").value
            journal.close()
        assert appends == 128
        assert fsyncs == 2

    def test_fsync_every_n_counts_batch_records(self, tmp_path):
        registry = observe.MetricsRegistry()
        with observe.use_registry(registry):
            with EventJournal(tmp_path / "wal", fsync=10) as journal:
                journal.append_batch(records(25))
        assert registry.counter("journal.fsyncs").value >= 1

    def test_empty_batch_is_a_noop(self, tmp_path):
        with EventJournal(tmp_path / "wal") as journal:
            assert journal.append_batch([]) == 0
            assert journal.position == 0

    def test_append_batch_after_close_raises(self, tmp_path):
        journal = EventJournal(tmp_path / "wal")
        journal.close()
        with pytest.raises(JournalError, match="closed"):
            journal.append_batch(records(1))

    def test_torn_batch_tail_truncates_like_single(self, tmp_path):
        journal = EventJournal(tmp_path / "wal", fsync="never")
        journal.append_batch(records(5))
        journal.close()
        # Chop bytes off the segment tail: the last record is torn.
        (segment,) = sorted((tmp_path / "wal").glob("journal-*.seg"))
        data = segment.read_bytes()
        segment.write_bytes(data[:-3])
        reopened = EventJournal(tmp_path / "wal")
        assert reopened.position == 4
        assert [r["i"] for _, r in reopened.replay()] == [0, 1, 2, 3]
        reopened.close()

    def test_rotation_applies_after_batch(self, tmp_path):
        with EventJournal(
            tmp_path / "wal", fsync="never", segment_bytes=64
        ) as journal:
            journal.append_batch(records(8))
            journal.append_batch(records(8, start=8))
            segments = sorted((tmp_path / "wal").glob("journal-*.seg"))
            assert len(segments) >= 2
            assert [r["i"] for _, r in journal.replay()] == list(range(16))


def _stream(n=120):
    trace = generate_log(
        SDSC_PROFILE, GeneratorConfig(scale=0.3, weeks=4, seed=7)
    )
    return list(trace.clean)[:n]


def _config():
    return FrameworkConfig(initial_train_weeks=2, retrain_weeks=2)


class TestIngestBatch:
    def test_matches_per_event_ingest(self):
        events = _stream()
        catalog = default_catalog()
        one = OnlinePredictionSession(_config(), catalog=catalog)
        per_event = []
        for event in events:
            per_event.extend(one.ingest(event))
        batched = OnlinePredictionSession(_config(), catalog=catalog)
        got = []
        for i in range(0, len(events), 16):
            got.extend(batched.ingest_batch(events[i : i + 16]))
        assert got == per_event
        assert batched.n_ingested == one.n_ingested == len(events)

    def test_batch_is_journaled_before_processing(self, tmp_path):
        events = _stream(40)
        journal = EventJournal(tmp_path / "wal", fsync="never")
        session = OnlinePredictionSession(
            _config(), catalog=default_catalog(), journal=journal
        )
        session.ingest_batch(events)
        assert journal.position == len(events)
        journal.close()
        # The journaled batch recovers into an identical session.
        recovered = OnlinePredictionSession.recover(
            tmp_path / "absent.ckpt",
            EventJournal(tmp_path / "wal", fsync="never"),
            _config(),
            catalog=default_catalog(),
        )
        assert recovered.n_ingested == len(events)

    def test_invalid_batch_is_rejected_atomically(self, tmp_path):
        events = _stream(20)
        journal = EventJournal(tmp_path / "wal", fsync="never")
        session = OnlinePredictionSession(
            _config(), catalog=default_catalog(), journal=journal
        )
        session.ingest_batch(events[:10])
        # Out-of-order batch: element 5 regresses behind element 4.
        bad = events[10:14] + [events[12]] + events[14:]
        with pytest.raises(ValueError, match="time order"):
            session.ingest_batch(bad)
        # Nothing from the bad batch was journaled or counted.
        assert session.n_ingested == 10
        assert journal.position == 10

    def test_empty_batch(self):
        session = OnlinePredictionSession(
            _config(), catalog=default_catalog()
        )
        assert session.ingest_batch([]) == []
        assert session.n_ingested == 0
