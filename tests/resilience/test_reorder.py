"""Late/out-of-order event tolerance: ReorderBuffer + session wiring."""

import pytest

from repro.core.framework import FrameworkConfig
from repro.core.online import OnlinePredictionSession
from repro.resilience import ReorderBuffer
from tests.conftest import make_event


def ev(t, code="KERNEL-N-000"):
    return make_event(t, code)


class TestReorderBuffer:
    def test_rejects_nonpositive_slack(self):
        with pytest.raises(ValueError, match="slack"):
            ReorderBuffer(0.0)

    def test_in_order_events_release_after_slack(self):
        buf = ReorderBuffer(10.0)
        ready, dropped = buf.push(ev(0.0))
        assert (ready, dropped) == ([], [])
        ready, _ = buf.push(ev(15.0))
        assert [e.timestamp for e in ready] == [0.0]

    def test_within_slack_events_resequenced(self):
        buf = ReorderBuffer(10.0)
        buf.push(ev(100.0))
        buf.push(ev(95.0))  # late but within slack
        assert buf.n_reordered == 1
        ready, _ = buf.push(ev(120.0))
        assert [e.timestamp for e in ready] == [95.0, 100.0]

    def test_beyond_slack_quarantined_not_raised(self):
        buf = ReorderBuffer(10.0)
        buf.push(ev(100.0))
        ready, dropped = buf.push(ev(80.0))  # older than watermark 90
        assert ready == []
        assert [e.timestamp for e in dropped] == [80.0]
        assert buf.n_quarantined == 1

    def test_ties_release_in_arrival_order(self):
        buf = ReorderBuffer(5.0)
        first, second = ev(50.0, "KERNEL-N-001"), ev(50.0, "KERNEL-N-002")
        buf.push(first)
        buf.push(second)
        ready = buf.drain()
        assert [e.entry_data for e in ready] == [
            "KERNEL-N-001",
            "KERNEL-N-002",
        ]

    def test_release_until_advances_horizon(self):
        buf = ReorderBuffer(10.0)
        buf.push(ev(100.0))
        assert [e.timestamp for e in buf.release_until(100.0)] == [100.0]
        # the clock advance moved the watermark: 85 is now too late
        _, dropped = buf.push(ev(85.0))
        assert len(dropped) == 1

    def test_release_until_watermark_reaches_clock(self):
        # Regression: the watermark must reach the release time itself,
        # not lag it by slack — otherwise an event older than everything
        # just released gets buffered and later comes out of order.
        buf = ReorderBuffer(10.0)
        buf.push(ev(100.0))
        assert [e.timestamp for e in buf.release_until(105.0)] == [100.0]
        assert buf.watermark >= 105.0
        ready, dropped = buf.push(ev(98.0))  # older than the observed clock
        assert ready == []
        assert [e.timestamp for e in dropped] == [98.0]

    def test_released_stream_is_nondecreasing(self):
        buf = ReorderBuffer(30.0)
        out = []
        for t in (10.0, 40.0, 25.0, 70.0, 55.0, 90.0, 130.0):
            ready, _ = buf.push(ev(t))
            out.extend(e.timestamp for e in ready)
        out.extend(e.timestamp for e in buf.drain())
        assert out == sorted(out)
        assert len(out) == 7

    def test_pending_does_not_consume(self):
        buf = ReorderBuffer(10.0)
        buf.push(ev(1.0))
        buf.push(ev(2.0))
        assert [e.timestamp for e in buf.pending()] == [1.0, 2.0]
        assert len(buf) == 2


class TestSessionSlack:
    @pytest.fixture(scope="class")
    def slack_config(self):
        return FrameworkConfig(
            initial_train_weeks=2, retrain_weeks=2, reorder_slack=300.0
        )

    def swapped(self, events):
        """Swap every 10th adjacent pair (within-slack disorder)."""
        events = list(events)
        for i in range(0, len(events) - 1, 10):
            if events[i + 1].timestamp - events[i].timestamp < 300.0:
                events[i], events[i + 1] = events[i + 1], events[i]
        return events

    def test_disordered_stream_matches_ordered_run(
        self, small_log, small_config, catalog, slack_config
    ):
        """Within-slack disorder yields the ordered run's warnings."""
        strict = OnlinePredictionSession(small_config, catalog=catalog)
        for event in small_log:
            strict.ingest(event)

        tolerant = OnlinePredictionSession(slack_config, catalog=catalog)
        for event in self.swapped(small_log):
            tolerant.ingest(event)
        tolerant.flush()
        assert tolerant.warnings == strict.warnings
        assert tolerant.n_quarantined == 0
        assert tolerant.summary().n_events == strict.summary().n_events

    def test_too_late_event_quarantined(self, catalog, slack_config):
        session = OnlinePredictionSession(slack_config, catalog=catalog)
        session.ingest(ev(10_000.0))
        dropped = session.ingest(ev(100.0))  # 9900 s late, slack 300
        assert dropped == []  # no warnings, no exception
        assert session.n_quarantined == 1
        assert [e.timestamp for e in session.quarantined] == [100.0]
        assert session.summary().n_quarantined == 1

    def test_strict_default_still_raises(self, catalog, small_config):
        session = OnlinePredictionSession(small_config, catalog=catalog)
        session.ingest(ev(1000.0))
        with pytest.raises(ValueError, match="time order"):
            session.ingest(ev(500.0))

    def test_advance_forces_buffered_events_out(self, catalog, slack_config):
        session = OnlinePredictionSession(slack_config, catalog=catalog)
        session.ingest(ev(50.0))
        assert len(session.history()) == 0  # still buffered
        session.advance(1000.0)
        assert len(session.history()) == 1

    def test_negative_slack_rejected(self):
        with pytest.raises(ValueError, match="reorder_slack"):
            FrameworkConfig(reorder_slack=-1.0)

    def test_late_event_after_advance_quarantined(self, catalog):
        """Regression: an event behind the advanced clock is quarantined.

        With the watermark lagging the clock by slack, this event was
        buffered and later released behind ``_last_time``, silently
        rewinding the session clock and unsorting ``history()``.
        """
        config = FrameworkConfig(
            initial_train_weeks=2, retrain_weeks=2, reorder_slack=10.0
        )
        session = OnlinePredictionSession(config, catalog=catalog)
        session.ingest(ev(100.0))
        session.advance(105.0)
        session.ingest(ev(98.0))  # behind the observed clock
        assert [e.timestamp for e in session.quarantined] == [98.0]
        session.ingest(ev(120.0))
        session.flush()
        times = [e.timestamp for e in session.history()]
        assert times == sorted(times) == [100.0, 120.0]
        assert session._last_time == 120.0

    def test_advance_backwards_raises_before_draining(
        self, catalog, slack_config
    ):
        """An invalid advance must not leave partial side effects."""
        session = OnlinePredictionSession(slack_config, catalog=catalog)
        session.ingest(ev(100.0))
        session.ingest(ev(200.0))
        session.advance(150.0)
        assert [e.timestamp for e in session.history()] == [100.0]
        with pytest.raises(ValueError, match="clock moved backwards"):
            session.advance(50.0)
        # 200.0 is still buffered; the failed call drained nothing
        assert [e.timestamp for e in session.history()] == [100.0]
        session.advance(250.0)
        assert [e.timestamp for e in session.history()] == [100.0, 200.0]
