"""Unit and property tests for work partitioning."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.parallel.chunking import chunk_bounds, even_chunks


class TestEvenChunks:
    def test_exact_split(self):
        assert even_chunks([1, 2, 3, 4], 2) == [[1, 2], [3, 4]]

    def test_uneven_split(self):
        chunks = even_chunks([1, 2, 3, 4, 5], 2)
        assert chunks == [[1, 2, 3], [4, 5]]

    def test_more_chunks_than_items(self):
        chunks = even_chunks([1, 2], 5)
        assert chunks == [[1], [2]]

    def test_empty(self):
        assert even_chunks([], 3) == []

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            even_chunks([1], 0)

    @given(
        st.lists(st.integers(), max_size=50),
        st.integers(min_value=1, max_value=10),
    )
    def test_partition_properties(self, items, n):
        chunks = even_chunks(items, n)
        # concatenation preserves order and content
        flat = [x for c in chunks for x in c]
        assert flat == items
        # no empty chunks, near-equal sizes
        assert all(len(c) > 0 for c in chunks)
        if chunks:
            sizes = [len(c) for c in chunks]
            assert max(sizes) - min(sizes) <= 1


class TestChunkBounds:
    def test_bounds_cover_range(self):
        bounds = chunk_bounds(10, 3)
        assert bounds[0][0] == 0
        assert bounds[-1][1] == 10
        for (a, b), (c, _) in zip(bounds, bounds[1:]):
            assert b == c

    def test_zero_items(self):
        assert chunk_bounds(0, 3) == []

    def test_invalid(self):
        with pytest.raises(ValueError):
            chunk_bounds(5, 0)
        with pytest.raises(ValueError):
            chunk_bounds(-1, 2)

    @given(st.integers(0, 200), st.integers(1, 12))
    def test_matches_even_chunks(self, n, k):
        items = list(range(n))
        chunks = even_chunks(items, k)
        bounds = chunk_bounds(n, k)
        assert [items[a:b] for a, b in bounds] == chunks
