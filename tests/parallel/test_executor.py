"""Unit tests for execution backends."""

import gc

import pytest

from repro.parallel.executor import (
    ExecutorBroken,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    make_executor,
)


def square(x):
    return x * x


def add(a, b):
    return a + b


class TestSerial:
    def test_map_preserves_order(self):
        assert SerialExecutor().map(square, [3, 1, 2]) == [9, 1, 4]

    def test_starmap(self):
        assert SerialExecutor().starmap(add, [(1, 2), (3, 4)]) == [3, 7]

    def test_context_manager(self):
        with SerialExecutor() as ex:
            assert ex.map(square, [2]) == [4]

    def test_empty_tasks(self):
        assert SerialExecutor().map(square, []) == []


class TestThread:
    def test_map(self):
        with ThreadExecutor(max_workers=2) as ex:
            assert ex.map(square, list(range(10))) == [i * i for i in range(10)]

    def test_starmap(self):
        with ThreadExecutor(max_workers=2) as ex:
            assert ex.starmap(add, [(1, 1), (2, 2)]) == [2, 4]

    def test_exceptions_propagate(self):
        def boom(x):
            raise RuntimeError("boom")

        with ThreadExecutor(max_workers=1) as ex, pytest.raises(RuntimeError):
            ex.map(boom, [1])


class TestProcess:
    def test_map(self):
        with ProcessExecutor(max_workers=2) as ex:
            assert ex.map(square, [1, 2, 3]) == [1, 4, 9]

    def test_starmap_picklable(self):
        with ProcessExecutor(max_workers=2) as ex:
            assert ex.starmap(add, [(1, 2), (5, 5)]) == [3, 10]


class TestLifecycle:
    def test_close_is_idempotent(self):
        ex = ThreadExecutor(max_workers=1)
        assert not ex.closed
        ex.close()
        ex.close()
        assert ex.closed

    def test_map_after_close_rejected(self):
        ex = ThreadExecutor(max_workers=1)
        ex.close()
        with pytest.raises(RuntimeError, match="closed"):
            ex.map(square, [1])

    def test_process_starmap_after_close_rejected(self):
        ex = ProcessExecutor(max_workers=1)
        ex.close()
        with pytest.raises(RuntimeError, match="closed"):
            ex.starmap(add, [(1, 2)])

    def test_context_manager_closes(self):
        with ThreadExecutor(max_workers=1) as ex:
            pass
        assert ex.closed

    def test_finalizer_shuts_pool_down_on_gc(self):
        """The safety net: dropping the last reference without close()
        still shuts the underlying pool down."""
        ex = ThreadExecutor(max_workers=1)
        pool = ex._pool
        del ex
        gc.collect()
        assert pool._shutdown


class TestFactory:
    def test_serial_kind(self):
        assert isinstance(make_executor("serial"), SerialExecutor)

    def test_thread_kind(self):
        ex = make_executor("thread", max_workers=1)
        assert isinstance(ex, ThreadExecutor)
        assert ex.map(square, [3]) == [9]
        ex.close()

    def test_process_kind(self):
        ex = make_executor("process", max_workers=1)
        assert isinstance(ex, ProcessExecutor)
        assert ex.map(square, [3]) == [9]
        ex.close()

    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown executor"):
            make_executor("gpu")


def _kill_own_process(x):
    import os

    os._exit(1)  # hard-kill the worker: the pool itself breaks


class TestBrokenPool:
    def test_dead_worker_raises_typed_error_and_closes_pool(self):
        """A worker dying mid-map is infrastructure failure, not a task
        bug: it surfaces as ExecutorBroken and the pool is unusable."""
        ex = ProcessExecutor(max_workers=1)
        with pytest.raises(ExecutorBroken, match="worker pool broke"):
            ex.map(_kill_own_process, [1])
        assert ex.closed
        with pytest.raises(RuntimeError, match="closed"):
            ex.map(square, [1])

    def test_task_exceptions_are_not_retyped(self):
        """Ordinary task bugs keep their own exception type."""

        def boom(x):
            raise KeyError("task bug")

        with ThreadExecutor(max_workers=2) as ex:
            with pytest.raises(KeyError, match="task bug"):
                ex.map(boom, [1])

    def test_closed_map_raises_executor_broken(self):
        """A closed pool must surface as ExecutorBroken, not a bare
        RuntimeError: sessions *sharing* a pool that a sibling closed
        after a break need the typed error so their serial fallback
        engages instead of crashing the retrain."""
        ex = ThreadExecutor(max_workers=1)
        ex.close()
        with pytest.raises(ExecutorBroken, match="closed"):
            ex.map(square, [1])

    def test_closed_starmap_raises_executor_broken(self):
        ex = ProcessExecutor(max_workers=1)
        ex.close()
        with pytest.raises(ExecutorBroken, match="closed"):
            ex.starmap(add, [(1, 2)])
