"""Unit tests for execution backends."""

import pytest

from repro.parallel.executor import (
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    make_executor,
)


def square(x):
    return x * x


def add(a, b):
    return a + b


class TestSerial:
    def test_map_preserves_order(self):
        assert SerialExecutor().map(square, [3, 1, 2]) == [9, 1, 4]

    def test_starmap(self):
        assert SerialExecutor().starmap(add, [(1, 2), (3, 4)]) == [3, 7]

    def test_context_manager(self):
        with SerialExecutor() as ex:
            assert ex.map(square, [2]) == [4]

    def test_empty_tasks(self):
        assert SerialExecutor().map(square, []) == []


class TestThread:
    def test_map(self):
        with ThreadExecutor(max_workers=2) as ex:
            assert ex.map(square, list(range(10))) == [i * i for i in range(10)]

    def test_starmap(self):
        with ThreadExecutor(max_workers=2) as ex:
            assert ex.starmap(add, [(1, 1), (2, 2)]) == [2, 4]

    def test_exceptions_propagate(self):
        def boom(x):
            raise RuntimeError("boom")

        with ThreadExecutor(max_workers=1) as ex, pytest.raises(RuntimeError):
            ex.map(boom, [1])


class TestProcess:
    def test_map(self):
        with ProcessExecutor(max_workers=2) as ex:
            assert ex.map(square, [1, 2, 3]) == [1, 4, 9]

    def test_starmap_picklable(self):
        with ProcessExecutor(max_workers=2) as ex:
            assert ex.starmap(add, [(1, 2), (5, 5)]) == [3, 10]


class TestFactory:
    def test_kinds(self):
        assert isinstance(make_executor("serial"), SerialExecutor)
        ex = make_executor("thread", max_workers=1)
        assert isinstance(ex, ThreadExecutor)
        ex.close()

    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown executor"):
            make_executor("gpu")
