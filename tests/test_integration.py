"""End-to-end integration tests: raw log → preprocessing → dynamic
meta-learning → evaluation, exercising the whole Figure 1 pipeline."""

import pytest

from repro import (
    DynamicMetaLearningFramework,
    FrameworkConfig,
    GeneratorConfig,
    PreprocessingPipeline,
    SDSC_PROFILE,
    generate_log,
    static_initial,
)
from repro.evaluation import mean_accuracy


class TestFullPipeline:
    @pytest.fixture(scope="class")
    def trace(self):
        # full calibrated volume; short enough to keep the raw log small
        return generate_log(
            SDSC_PROFILE,
            GeneratorConfig(scale=1.0, weeks=36, seed=99, duplicates=True),
        )

    def test_raw_to_predictions(self, trace):
        """The paper's full loop, starting from the duplicated raw dump."""
        pipeline = PreprocessingPipeline(trace.catalog)
        pre = pipeline.run(trace.raw)
        assert pre.compression_rate > 0.9

        config = FrameworkConfig(initial_train_weeks=20, retrain_weeks=4)
        framework = DynamicMetaLearningFramework(config, catalog=trace.catalog)
        result = framework.run(pre.clean)
        assert len(result.warnings) > 0
        assert result.overall.precision > 0.3
        assert result.overall.recall > 0.15

    def test_preprocessed_run_remains_effective(self, trace):
        """Filtering coalesces some same-type burst failures (as it did in
        the paper's cleaning), which weakens the statistical signal — but
        the framework must still predict usefully on the filtered log."""
        config = FrameworkConfig(initial_train_weeks=20)
        pre = PreprocessingPipeline(trace.catalog).run(trace.raw)
        from_raw = DynamicMetaLearningFramework(
            config, catalog=trace.catalog
        ).run(pre.clean)
        from_truth = DynamicMetaLearningFramework(
            config, catalog=trace.catalog
        ).run(trace.clean)
        p1, r1 = mean_accuracy(from_raw.weekly)
        p2, r2 = mean_accuracy(from_truth.weekly)
        assert p1 > 0.3 and r1 > 0.15
        assert p2 > 0.3 and r2 > 0.15


class TestPaperHeadlines:
    """The paper's headline claims, on the mid-size SDSC trace."""

    @pytest.fixture(scope="class")
    def log(self, mid_trace):
        return mid_trace.clean

    def test_dynamic_beats_static_late(self, mid_trace, log):
        dyn = DynamicMetaLearningFramework(
            FrameworkConfig(initial_train_weeks=20), catalog=mid_trace.catalog
        ).run(log)
        sta = DynamicMetaLearningFramework(
            FrameworkConfig(initial_train_weeks=20, policy=static_initial(5)),
            catalog=mid_trace.catalog,
        ).run(log)
        # over the last weeks of the trace, dynamic retraining wins
        tail_dyn = mean_accuracy(dyn.weekly[-10:])
        tail_sta = mean_accuracy(sta.weekly[-10:])
        assert tail_dyn[1] >= tail_sta[1] - 0.05  # recall
        assert tail_dyn[0] >= tail_sta[0] - 0.05  # precision

    def test_prediction_after_short_training(self, mid_trace, log):
        """The framework gives usable predictions after ~8 weeks of data
        (the paper: >43 % of failures captured after only two weeks)."""
        result = DynamicMetaLearningFramework(
            FrameworkConfig(initial_train_weeks=8), catalog=mid_trace.catalog
        ).run(log, end_week=20)
        _, recall = mean_accuracy(result.weekly)
        assert recall > 0.3

    def test_runtime_overhead_headline(self, mid_trace, log):
        """Online rule matching is far below the paper's 1-minute bound."""
        import time

        from repro.core.predictor import Predictor

        framework = DynamicMetaLearningFramework(catalog=mid_trace.catalog)
        event = framework._retrain(log, 26)
        predictor = Predictor(
            framework.repository.rules(), 300.0, mid_trace.catalog
        )
        week = log.week(27)
        predictor.state.clock = float(week.timestamps[0]) - 1.0
        t0 = time.perf_counter()
        predictor.replay(week)
        assert time.perf_counter() - t0 < 60.0
        assert event.n_kept > 0
