"""Unit tests for the probability-distribution base learner."""

import numpy as np
import pytest

from repro.learners.distribution import DistributionLearner
from repro.learners.rules import DistributionRule
from repro.raslog.events import Severity
from repro.raslog.store import EventLog
from tests.conftest import make_log

FATAL = "KERNEL-F-000"


def fatal_log(times):
    return make_log([(t, FATAL, {"severity": Severity.FATAL}) for t in times])


def weibull_times(n=400, shape=0.9, scale=20000.0, seed=0):
    gaps = scale * np.random.default_rng(seed).weibull(shape, size=n)
    return np.cumsum(gaps)


class TestFit:
    def test_fits_interarrivals(self, catalog):
        log = fatal_log(weibull_times())
        learner = DistributionLearner(catalog)
        fitted = learner.fit(log)
        assert fitted.n >= 300
        assert learner.last_fit is fitted

    def test_censoring_drops_short_gaps(self, catalog):
        times = list(weibull_times(n=200, seed=1))
        # inject bursts: a 10 s follower after each failure
        burst = [t + 10.0 for t in times]
        log = fatal_log(sorted(times + burst))
        learner = DistributionLearner(catalog)
        uncensored = learner.fit(log, censor_below=0.0)
        censored = learner.fit(log, censor_below=300.0)
        assert censored.n < uncensored.n
        # censored fit sees only the long gaps -> larger median
        assert censored.quantile(0.5) > uncensored.quantile(0.5)

    def test_censor_fallback_when_too_few(self, catalog):
        # all gaps below the censor threshold: falls back to full sample
        times = np.cumsum(np.full(50, 10.0))
        log = fatal_log(times)
        learner = DistributionLearner(catalog, families=("exponential",))
        fitted = learner.fit(log, censor_below=300.0)
        assert fitted.n == 49

    def test_too_few_failures(self, catalog):
        log = fatal_log([100.0, 200.0])
        with pytest.raises(ValueError, match="not enough"):
            DistributionLearner(catalog).fit(log)

    def test_ignores_nonfatal_events(self, catalog):
        times = weibull_times(n=100)
        specs = [(t, FATAL, {"severity": Severity.FATAL}) for t in times]
        specs += [(t + 1.0, "KERNEL-N-000", {"severity": Severity.INFO}) for t in times]
        log = make_log(specs)
        fitted = DistributionLearner(catalog).fit(log)
        assert fitted.n == 99  # only fatal interarrivals


class TestTrain:
    def test_emits_single_rule(self, catalog):
        rules = DistributionLearner(catalog).train(fatal_log(weibull_times()), 300.0)
        assert len(rules) == 1
        rule = rules[0]
        assert isinstance(rule, DistributionRule)
        assert rule.threshold == 0.6
        assert rule.quantile_time > 0

    def test_quantile_matches_threshold(self, catalog):
        learner = DistributionLearner(catalog, threshold=0.75)
        rules = learner.train(fatal_log(weibull_times()), 300.0)
        fitted = learner.last_fit
        assert rules[0].quantile_time == pytest.approx(fitted.quantile(0.75))
        assert float(fitted.cdf(rules[0].quantile_time)) == pytest.approx(0.75)

    def test_empty_log_trains_nothing(self, catalog):
        assert DistributionLearner(catalog).train(EventLog(), 300.0) == []

    def test_paper_default_threshold(self, catalog):
        assert DistributionLearner(catalog).threshold == 0.6

    def test_parameter_validation(self, catalog):
        with pytest.raises(ValueError, match="threshold"):
            DistributionLearner(catalog, threshold=1.0)
        with pytest.raises(ValueError, match="min_samples"):
            DistributionLearner(catalog, min_samples=2)

    def test_on_synthetic_trace(self, mid_trace):
        learner = DistributionLearner(mid_trace.catalog)
        rules = learner.train(mid_trace.clean, 300.0)
        assert len(rules) == 1
        # fitted on censored (isolated) gaps: the quantile is hours-scale
        assert 1800.0 < rules[0].quantile_time < 200_000.0
