"""Unit and property tests for the Apriori miner, including a brute-force
cross-check."""

from itertools import chain, combinations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.learners.apriori import apriori, association_rules_from


def brute_force(transactions, min_support, max_len=None):
    """Reference implementation: enumerate every candidate itemset."""
    tx = [frozenset(t) for t in transactions]
    items = sorted(set(chain.from_iterable(tx)))
    n = len(tx)
    out = {}
    top = len(items) if max_len is None else min(max_len, len(items))
    for k in range(1, top + 1):
        for combo in combinations(items, k):
            s = frozenset(combo)
            count = sum(1 for t in tx if s <= t)
            if count >= min_support * n and count > 0:
                out[s] = count
    return out


class TestAprioriBasics:
    def test_classic_example(self):
        tx = [
            {"bread", "milk"},
            {"bread", "diapers", "beer", "eggs"},
            {"milk", "diapers", "beer", "cola"},
            {"bread", "milk", "diapers", "beer"},
            {"bread", "milk", "diapers", "cola"},
        ]
        result = apriori(tx, min_support=0.6)
        assert result.counts[frozenset({"bread"})] == 4
        assert result.counts[frozenset({"milk", "diapers"})] == 3
        assert frozenset({"beer", "milk"}) not in result.counts  # support 0.4

    def test_support_accessor(self):
        result = apriori([{"a"}, {"a", "b"}], min_support=0.5)
        assert result.support({"a"}) == 1.0
        assert result.support({"a", "b"}) == 0.5
        assert result.support({"zzz"}) == 0.0

    def test_empty_transactions(self):
        result = apriori([], min_support=0.5)
        assert len(result) == 0
        assert result.support({"a"}) == 0.0

    def test_max_len_limits_size(self):
        tx = [{"a", "b", "c"}] * 4
        result = apriori(tx, min_support=0.5, max_len=2)
        assert all(len(s) <= 2 for s in result.counts)
        assert frozenset({"a", "b"}) in result.counts

    def test_min_support_validation(self):
        with pytest.raises(ValueError, match="min_support"):
            apriori([{"a"}], min_support=0.0)

    def test_max_len_validation(self):
        with pytest.raises(ValueError, match="max_len"):
            apriori([{"a"}], min_support=0.5, max_len=0)

    def test_contains(self):
        result = apriori([{"a", "b"}], min_support=0.5)
        assert {"a"} in result
        assert {"c"} not in result

    def test_downward_closure(self):
        tx = [{"a", "b", "c"}, {"a", "b"}, {"a", "c"}, {"b", "c"}]
        result = apriori(tx, min_support=0.25)
        for itemset in result.counts:
            for k in range(1, len(itemset)):
                for sub in combinations(sorted(itemset), k):
                    assert frozenset(sub) in result.counts


@st.composite
def transaction_sets(draw):
    n_items = draw(st.integers(min_value=1, max_value=6))
    items = [f"i{k}" for k in range(n_items)]
    n_tx = draw(st.integers(min_value=1, max_value=15))
    return [
        frozenset(draw(st.sets(st.sampled_from(items), min_size=1, max_size=n_items)))
        for _ in range(n_tx)
    ]


class TestAgainstBruteForce:
    @settings(max_examples=60, deadline=None)
    @given(transaction_sets(), st.floats(min_value=0.05, max_value=1.0))
    def test_matches_reference(self, tx, min_support):
        fast = apriori(tx, min_support)
        slow = brute_force(tx, min_support)
        assert fast.counts == slow

    @settings(max_examples=30, deadline=None)
    @given(transaction_sets(), st.integers(min_value=1, max_value=3))
    def test_matches_reference_with_max_len(self, tx, max_len):
        fast = apriori(tx, 0.1, max_len=max_len)
        slow = brute_force(tx, 0.1, max_len=max_len)
        assert fast.counts == slow


class TestRuleGeneration:
    def test_targeted_rules(self):
        tx = [
            {"w1", "w2", "FATAL"},
            {"w1", "w2", "FATAL"},
            {"w1", "w3"},
            {"w2", "FATAL"},
        ]
        itemsets = apriori(tx, min_support=0.25)
        rules = association_rules_from(itemsets, {"FATAL"}, min_confidence=0.5)
        as_dict = {(frozenset(a), c): (s, conf) for a, c, s, conf in rules}
        support, confidence = as_dict[(frozenset({"w2"}), "FATAL")]
        assert confidence == pytest.approx(1.0)
        assert support == pytest.approx(0.75)
        # w1 -> FATAL has confidence 2/3
        _, conf_w1 = as_dict[(frozenset({"w1"}), "FATAL")]
        assert conf_w1 == pytest.approx(2 / 3)

    def test_consequent_only_itemsets_excluded(self):
        tx = [{"FATAL"}, {"FATAL"}]
        itemsets = apriori(tx, min_support=0.5)
        rules = association_rules_from(itemsets, {"FATAL"}, min_confidence=0.1)
        assert rules == []

    def test_multi_consequent_itemsets_excluded(self):
        tx = [{"w", "F1", "F2"}] * 3
        itemsets = apriori(tx, min_support=0.5)
        rules = association_rules_from(itemsets, {"F1", "F2"}, 0.1)
        # only single-consequent itemsets produce rules
        assert all(c in ("F1", "F2") for _, c, _, _ in rules)
        assert all(not (a & {"F1", "F2"}) for a, _, _, _ in rules)

    def test_min_confidence_filters(self):
        tx = [{"w", "FATAL"}, {"w"}, {"w"}, {"w"}]
        itemsets = apriori(tx, min_support=0.25)
        none = association_rules_from(itemsets, {"FATAL"}, min_confidence=0.5)
        some = association_rules_from(itemsets, {"FATAL"}, min_confidence=0.2)
        assert none == []
        assert len(some) == 1

    def test_validation(self):
        itemsets = apriori([{"a"}], 0.5)
        with pytest.raises(ValueError, match="min_confidence"):
            association_rules_from(itemsets, {"a"}, 0.0)
