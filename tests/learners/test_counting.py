"""Unit tests for the count-threshold base learner."""

import pytest

from repro.learners.counting import CountThresholdLearner
from repro.learners.rules import CountRule
from repro.raslog.events import Severity
from repro.raslog.store import EventLog
from tests.conftest import make_log

FATAL = "KERNEL-F-000"
FLOOD = "KERNEL-N-010"
OTHER = "KERNEL-N-011"


def flood_log(n=12, flood_size=5, with_noise=True):
    """Every FATAL is preceded by `flood_size` FLOOD warnings."""
    specs = []
    for i in range(n):
        t = (i + 1) * 5000.0
        for j in range(flood_size):
            specs.append((t - 250.0 + j * 40.0, FLOOD, {"severity": Severity.WARNING}))
        specs.append((t, FATAL, {"severity": Severity.FATAL}))
    if with_noise:
        # single (non-flood) occurrences elsewhere
        for i in range(n):
            specs.append((i * 5000.0 + 2000.0, FLOOD, {"severity": Severity.WARNING}))
            specs.append((i * 5000.0 + 2500.0, OTHER, {"severity": Severity.WARNING}))
    return make_log(specs)


class TestCountRuleModel:
    def test_validation(self):
        with pytest.raises(ValueError, match="count"):
            CountRule(code="a", count=1, window=300.0, consequent="f",
                      support=0.5, confidence=0.5)
        with pytest.raises(ValueError, match="window"):
            CountRule(code="a", count=2, window=0.0, consequent="f",
                      support=0.5, confidence=0.5)
        with pytest.raises(ValueError, match="itself"):
            CountRule(code="a", count=2, window=300.0, consequent="a",
                      support=0.5, confidence=0.5)

    def test_identity(self):
        r = CountRule(code="a", count=3, window=300.0, consequent="f",
                      support=0.5, confidence=0.5)
        assert r.kind == "count"
        assert r.predicted == "f"
        assert r.key == ("count", "a", 3, "f")
        assert "3x a" in r.describe()


class TestWindowCounts:
    def test_multisets(self, catalog):
        learner = CountThresholdLearner(catalog)
        counts = learner.window_counts(flood_log(3, with_noise=False), 300.0)
        assert len(counts) == 3
        for fatal_code, counter in counts:
            assert fatal_code == FATAL
            assert counter[FLOOD] == 5

    def test_invalid_window(self, catalog):
        with pytest.raises(ValueError, match="window"):
            CountThresholdLearner(catalog).window_counts(flood_log(), 0.0)


class TestTraining:
    def test_mines_flood_rule(self, catalog):
        learner = CountThresholdLearner(catalog)
        rules = learner.train(flood_log(), 300.0)
        flood_rules = [r for r in rules if r.code == FLOOD and r.consequent == FATAL]
        assert flood_rules
        assert flood_rules[0].count >= 2
        assert flood_rules[0].confidence == pytest.approx(1.0)

    def test_keeps_one_rule_per_pair(self, catalog):
        rules = CountThresholdLearner(catalog).train(flood_log(), 300.0)
        pairs = [(r.code, r.consequent) for r in rules]
        assert len(pairs) == len(set(pairs))

    def test_single_occurrences_do_not_qualify(self, catalog):
        # OTHER appears once per window; min_count is 2
        rules = CountThresholdLearner(catalog).train(flood_log(), 300.0)
        assert not any(r.code == OTHER for r in rules)

    def test_min_confidence_filters(self, catalog):
        strict = CountThresholdLearner(catalog, min_confidence=0.99)
        loose = CountThresholdLearner(catalog, min_confidence=0.05)
        log = flood_log()
        assert len(strict.train(log, 300.0)) <= len(loose.train(log, 300.0))

    def test_empty_log(self, catalog):
        assert CountThresholdLearner(catalog).train(EventLog(), 300.0) == []

    def test_parameter_validation(self, catalog):
        with pytest.raises(ValueError, match="min_support"):
            CountThresholdLearner(catalog, min_support=0.0)
        with pytest.raises(ValueError, match="min_confidence"):
            CountThresholdLearner(catalog, min_confidence=1.5)
        with pytest.raises(ValueError, match="min_count"):
            CountThresholdLearner(catalog, min_count=1)
        with pytest.raises(ValueError, match="max_count"):
            CountThresholdLearner(catalog, min_count=5, max_count=4)

    def test_registered_in_registry(self, catalog):
        from repro.learners.registry import create_learner

        learner = create_learner("count", catalog=catalog)
        assert isinstance(learner, CountThresholdLearner)

    def test_on_synthetic_flood_templates(self, mid_trace):
        """The generator's flooding templates give this learner signal."""
        learner = CountThresholdLearner(mid_trace.catalog)
        rules = learner.train(mid_trace.clean.slice_weeks(0, 26), 300.0)
        assert isinstance(rules, list)  # may be few, but must not error
        for r in rules:
            assert isinstance(r, CountRule)


class TestPredictorIntegration:
    def test_count_rule_fires_on_flood(self, catalog):
        from repro.core.predictor import Predictor

        rule = CountRule(code=FLOOD, count=3, window=300.0, consequent=FATAL,
                         support=0.5, confidence=0.9)
        p = Predictor([rule], 300.0, catalog)
        from tests.conftest import make_event

        assert p.observe(make_event(10.0, FLOOD)) == []
        assert p.observe(make_event(20.0, FLOOD)) == []
        warnings = p.observe(make_event(30.0, FLOOD))
        assert len(warnings) == 1
        assert warnings[0].predicted == FATAL
        assert warnings[0].learner == "count"

    def test_count_resets_outside_window(self, catalog):
        from repro.core.predictor import Predictor
        from tests.conftest import make_event

        rule = CountRule(code=FLOOD, count=3, window=300.0, consequent=FATAL,
                         support=0.5, confidence=0.9)
        p = Predictor([rule], 300.0, catalog)
        p.observe(make_event(10.0, FLOOD))
        p.observe(make_event(20.0, FLOOD))
        # third occurrence arrives after the first two expired
        assert p.observe(make_event(500.0, FLOOD)) == []

    def test_n_rules_counts_count_rules(self, catalog):
        from repro.core.predictor import Predictor

        rule = CountRule(code=FLOOD, count=3, window=300.0, consequent=FATAL,
                         support=0.5, confidence=0.9)
        assert Predictor([rule], 300.0, catalog).n_rules == 1
