"""Unit tests for the rule model."""

import pytest

from repro.learners.rules import (
    ANY_FAILURE,
    AssociationRule,
    DistributionRule,
    StatisticalRule,
    rule_sort_key,
)


class TestAssociationRule:
    def make(self, **kw):
        defaults = dict(
            antecedent=frozenset({"a", "b"}),
            consequent="f",
            support=0.05,
            confidence=0.8,
        )
        defaults.update(kw)
        return AssociationRule(**defaults)

    def test_basic(self):
        r = self.make()
        assert r.kind == "association"
        assert r.predicted == "f"

    def test_key_is_order_insensitive(self):
        r1 = self.make(antecedent=frozenset({"a", "b"}))
        r2 = self.make(antecedent=frozenset({"b", "a"}))
        assert r1.key == r2.key

    def test_key_distinguishes_consequent(self):
        assert self.make(consequent="f").key != self.make(consequent="g").key

    def test_empty_antecedent_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            self.make(antecedent=frozenset())

    def test_self_reference_rejected(self):
        with pytest.raises(ValueError, match="appears in its own"):
            self.make(antecedent=frozenset({"f", "a"}))

    @pytest.mark.parametrize("support", [0.0, 1.5, -0.1])
    def test_support_range(self, support):
        with pytest.raises(ValueError, match="support"):
            self.make(support=support)

    @pytest.mark.parametrize("confidence", [0.0, 1.01])
    def test_confidence_range(self, confidence):
        with pytest.raises(ValueError, match="confidence"):
            self.make(confidence=confidence)

    def test_describe(self):
        text = self.make().describe()
        assert "-> f" in text and "0.80" in text


class TestStatisticalRule:
    def test_basic(self):
        r = StatisticalRule(k=4, window=300.0, probability=0.99)
        assert r.kind == "statistical"
        assert r.predicted == ANY_FAILURE
        assert "4 failures within 300s" in r.describe()

    def test_key_includes_k_and_window(self):
        a = StatisticalRule(k=2, window=300.0, probability=0.9)
        b = StatisticalRule(k=3, window=300.0, probability=0.9)
        c = StatisticalRule(k=2, window=600.0, probability=0.9)
        assert len({a.key, b.key, c.key}) == 3

    def test_key_ignores_probability(self):
        a = StatisticalRule(k=2, window=300.0, probability=0.9)
        b = StatisticalRule(k=2, window=300.0, probability=0.95)
        assert a.key == b.key

    def test_validation(self):
        with pytest.raises(ValueError, match="k must be"):
            StatisticalRule(k=0, window=300.0, probability=0.9)
        with pytest.raises(ValueError, match="window"):
            StatisticalRule(k=1, window=0.0, probability=0.9)
        with pytest.raises(ValueError, match="probability"):
            StatisticalRule(k=1, window=300.0, probability=0.0)


class TestDistributionRule:
    def make(self, **kw):
        defaults = dict(
            distribution="weibull",
            params=(0.5, 20000.0),
            threshold=0.6,
            quantile_time=20000.0,
        )
        defaults.update(kw)
        return DistributionRule(**defaults)

    def test_basic(self):
        r = self.make()
        assert r.kind == "distribution"
        assert r.predicted == ANY_FAILURE
        assert "weibull" in r.describe()

    def test_key_buckets_quantile(self):
        # a small fit wobble is the "same" rule; a big shift is not
        a = self.make(quantile_time=20000.0)
        b = self.make(quantile_time=20100.0)
        c = self.make(quantile_time=40000.0)
        assert a.key == b.key
        assert a.key != c.key

    def test_validation(self):
        with pytest.raises(ValueError, match="threshold"):
            self.make(threshold=1.0)
        with pytest.raises(ValueError, match="quantile_time"):
            self.make(quantile_time=0.0)


class TestSortKey:
    def test_deterministic_ordering(self):
        rules = [
            StatisticalRule(k=2, window=300.0, probability=0.9),
            AssociationRule(
                antecedent=frozenset({"a"}), consequent="f",
                support=0.1, confidence=0.5,
            ),
            DistributionRule(
                distribution="weibull", params=(1.0, 2.0),
                threshold=0.6, quantile_time=100.0,
            ),
        ]
        ordered = sorted(rules, key=rule_sort_key)
        assert [r.kind for r in ordered] == [
            "association",
            "distribution",
            "statistical",
        ]
