"""Unit, recovery and property tests for the MLE distribution fits."""

import numpy as np
import pytest
import scipy.stats
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.learners.fitting import (
    DISTRIBUTION_FAMILIES,
    fit_best,
    fit_exponential,
    fit_family,
    fit_lognormal,
    fit_weibull,
)

RNG = np.random.default_rng(1234)


class TestExponential:
    def test_rate_recovery(self):
        data = RNG.exponential(scale=500.0, size=8000)
        fit = fit_exponential(data)
        (rate,) = fit.params
        assert rate == pytest.approx(1 / 500.0, rel=0.05)

    def test_matches_scipy_loglik(self):
        data = RNG.exponential(scale=100.0, size=500)
        fit = fit_exponential(data)
        scipy_ll = scipy.stats.expon.logpdf(data, scale=1 / fit.params[0]).sum()
        assert fit.loglik == pytest.approx(scipy_ll, rel=1e-9)

    def test_cdf_and_quantile_inverse(self):
        fit = fit_exponential(RNG.exponential(200.0, 200))
        for q in (0.1, 0.5, 0.9):
            assert fit.cdf(fit.quantile(q)) == pytest.approx(q, abs=1e-9)


class TestWeibull:
    def test_shape_scale_recovery(self):
        data = 20000.0 * RNG.weibull(0.5, size=20000)
        fit = fit_weibull(data)
        shape, scale = fit.params
        assert shape == pytest.approx(0.5, rel=0.05)
        assert scale == pytest.approx(20000.0, rel=0.08)

    def test_matches_scipy_mle(self):
        data = 1000.0 * RNG.weibull(1.3, size=3000)
        fit = fit_weibull(data)
        c, _, scale = scipy.stats.weibull_min.fit(data, floc=0)
        assert fit.params[0] == pytest.approx(c, rel=0.01)
        assert fit.params[1] == pytest.approx(scale, rel=0.01)

    def test_paper_style_cdf(self):
        """The paper's SDSC fit: F(20000) = 0.63 for the quoted params."""
        from repro.learners.fitting import FittedDistribution

        f = FittedDistribution(
            name="weibull",
            params=(0.507936, 19984.8),
            loglik=0.0,
            ks_statistic=0.0,
            n=1,
        )
        assert float(f.cdf(20000.0)) == pytest.approx(0.63, abs=0.005)

    def test_quantile_inverse(self):
        fit = fit_weibull(500.0 * RNG.weibull(0.8, 1000))
        for q in (0.2, 0.6, 0.95):
            assert fit.cdf(fit.quantile(q)) == pytest.approx(q, abs=1e-9)

    def test_degenerate_sample_rejected(self):
        with pytest.raises(ValueError, match="identical"):
            fit_weibull(np.full(100, 7.0))


class TestLognormal:
    def test_param_recovery(self):
        data = RNG.lognormal(mean=5.0, sigma=1.5, size=10000)
        fit = fit_lognormal(data)
        mu, sigma = fit.params
        assert mu == pytest.approx(5.0, abs=0.05)
        assert sigma == pytest.approx(1.5, rel=0.05)

    def test_matches_scipy_loglik(self):
        data = RNG.lognormal(3.0, 0.8, 400)
        fit = fit_lognormal(data)
        mu, sigma = fit.params
        scipy_ll = scipy.stats.lognorm.logpdf(data, s=sigma, scale=np.exp(mu)).sum()
        assert fit.loglik == pytest.approx(scipy_ll, rel=1e-9)

    def test_cdf_zero_below_zero(self):
        fit = fit_lognormal(RNG.lognormal(2.0, 1.0, 100))
        assert float(fit.cdf(0.0)) == 0.0
        assert float(fit.cdf(-5.0)) == 0.0

    def test_degenerate_sample(self):
        with pytest.raises(ValueError, match="zero variance"):
            fit_lognormal(np.full(50, 3.0))


class TestModelSelection:
    def test_best_picks_generating_family(self):
        weib = 10000.0 * RNG.weibull(0.5, size=5000)
        assert fit_best(weib).name == "weibull"
        logn = RNG.lognormal(7.0, 2.0, size=5000)
        assert fit_best(logn).name == "lognormal"

    def test_family_subset(self):
        data = RNG.exponential(100.0, 500)
        fit = fit_best(data, families=("exponential",))
        assert fit.name == "exponential"

    def test_unknown_family(self):
        with pytest.raises(ValueError, match="unknown family"):
            fit_family("gamma", RNG.exponential(1.0, 100))

    def test_empty_families(self):
        with pytest.raises(ValueError, match="at least one"):
            fit_best(RNG.exponential(1.0, 100), families=())

    def test_all_failed(self):
        with pytest.raises(ValueError, match="at least 3 positive"):
            fit_best(np.array([1.0]))

    def test_families_constant(self):
        assert set(DISTRIBUTION_FAMILIES) == {"weibull", "exponential", "lognormal"}


class TestSampleValidation:
    def test_nonpositive_values_dropped(self):
        data = np.concatenate([RNG.exponential(10.0, 100), [-1.0, 0.0]])
        fit = fit_exponential(data)
        assert fit.n == 100

    def test_too_small_sample(self):
        with pytest.raises(ValueError, match="at least 3"):
            fit_exponential(np.array([1.0, 2.0]))


class TestProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        st.floats(min_value=0.3, max_value=3.0),
        st.floats(min_value=10.0, max_value=1e5),
        st.integers(min_value=50, max_value=400),
    )
    def test_weibull_cdf_monotone_and_bounded(self, shape, scale, n):
        data = scale * np.random.default_rng(0).weibull(shape, size=n)
        fit = fit_weibull(data)
        ts = np.linspace(0.0, scale * 5, 50)
        cdf = np.asarray(fit.cdf(ts))
        assert np.all(np.diff(cdf) >= -1e-12)
        assert np.all((cdf >= 0.0) & (cdf <= 1.0))

    @settings(max_examples=25, deadline=None)
    @given(st.sampled_from(DISTRIBUTION_FAMILIES), st.integers(min_value=0, max_value=5))
    def test_ks_statistic_in_unit_interval(self, family, seed):
        data = np.random.default_rng(seed).exponential(100.0, 200)
        fit = fit_family(family, data)
        assert 0.0 <= fit.ks_statistic <= 1.0

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=10))
    def test_best_has_max_loglik(self, seed):
        data = np.random.default_rng(seed).lognormal(4.0, 1.0, 300)
        best = fit_best(data)
        for family in DISTRIBUTION_FAMILIES:
            assert best.loglik >= fit_family(family, data).loglik - 1e-9
