"""Unit tests for the learner registry and the extension point."""

import pytest

from repro.learners.base import BaseLearner
from repro.learners.registry import (
    DEFAULT_LEARNERS,
    available_learners,
    create_learner,
    register_learner,
)


class TestDefaults:
    def test_paper_order(self):
        assert DEFAULT_LEARNERS == ("association", "statistical", "distribution")

    def test_all_registered(self):
        for name in DEFAULT_LEARNERS:
            assert name in available_learners()

    def test_create_builds_correct_types(self, catalog):
        from repro.learners.association import AssociationRuleLearner

        learner = create_learner("association", catalog=catalog)
        assert isinstance(learner, AssociationRuleLearner)
        assert learner.catalog is catalog

    def test_create_passes_kwargs(self, catalog):
        learner = create_learner("association", catalog=catalog, min_support=0.2)
        assert learner.min_support == 0.2

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown learner"):
            create_learner("neural-net")


class _ToyLearner(BaseLearner):
    name = "toy"

    def train(self, log, window):
        return []


class TestRegistration:
    def test_register_and_create(self, catalog):
        register_learner("toy-test", _ToyLearner, overwrite=True)
        learner = create_learner("toy-test", catalog=catalog)
        assert isinstance(learner, _ToyLearner)

    def test_duplicate_rejected(self):
        register_learner("toy-dup", _ToyLearner, overwrite=True)
        with pytest.raises(ValueError, match="already registered"):
            register_learner("toy-dup", _ToyLearner)

    def test_overwrite_allowed(self):
        register_learner("toy-ow", _ToyLearner, overwrite=True)
        register_learner("toy-ow", _ToyLearner, overwrite=True)

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            register_learner("", _ToyLearner)


class TestBaseLearnerHelpers:
    def test_split_fatal(self, catalog, log_factory):
        from repro.raslog.events import Severity

        log = log_factory(
            [
                (1.0, "KERNEL-F-000", {"severity": Severity.FATAL}),
                (2.0, "KERNEL-N-000", {"severity": Severity.INFO}),
            ]
        )
        learner = _ToyLearner(catalog)
        fatal, nonfatal = learner.split_fatal(log)
        assert len(fatal) == 1 and len(nonfatal) == 1

    def test_fatal_mask(self, catalog, log_factory):
        from repro.raslog.events import Severity

        log = log_factory(
            [
                (1.0, "KERNEL-F-000", {"severity": Severity.FATAL}),
                (2.0, "not-a-code", {}),
            ]
        )
        assert _ToyLearner(catalog).fatal_mask(log) == [True, False]

    def test_repr(self, catalog):
        assert "toy" in repr(_ToyLearner(catalog))

    def test_default_catalog_used(self):
        from repro.raslog.catalog import default_catalog

        assert _ToyLearner().catalog is default_catalog()
