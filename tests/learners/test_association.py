"""Unit tests for the association-rule base learner."""

import pytest

from repro.learners.association import AssociationRuleLearner
from repro.learners.rules import AssociationRule
from repro.raslog.events import Severity
from tests.conftest import make_log

FATAL = "KERNEL-F-000"
FATAL2 = "KERNEL-F-001"
W1, W2, W3 = "KERNEL-N-002", "KERNEL-N-003", "KERNEL-N-004"


def chain_log(n_chains=10, lead=50.0, spacing=5000.0, extra=()):
    """n_chains repetitions of W1,W2 -> FATAL, plus extra events."""
    specs = []
    for i in range(n_chains):
        t = (i + 1) * spacing
        specs.append((t - lead, W1, {"severity": Severity.WARNING}))
        specs.append((t - lead / 2, W2, {"severity": Severity.WARNING}))
        specs.append((t, FATAL, {"severity": Severity.FATAL}))
    specs.extend(extra)
    return make_log(specs)


class TestTransactions:
    def test_one_transaction_per_backed_fatal(self, catalog):
        learner = AssociationRuleLearner(catalog)
        tx = learner.transactions(chain_log(5), window=300.0)
        assert len(tx) == 5
        assert all({W1, W2, FATAL} == t for t in tx)

    def test_fatal_without_precursors_skipped(self, catalog):
        log = make_log([(100.0, FATAL, {"severity": Severity.FATAL})])
        learner = AssociationRuleLearner(catalog)
        assert learner.transactions(log, window=300.0) == []

    def test_window_limits_items(self, catalog):
        log = make_log(
            [
                (0.0, W1, {"severity": Severity.WARNING}),
                (1000.0, W2, {"severity": Severity.WARNING}),
                (1100.0, FATAL, {"severity": Severity.FATAL}),
            ]
        )
        learner = AssociationRuleLearner(catalog)
        tx = learner.transactions(log, window=300.0)
        assert tx == [frozenset({W2, FATAL})]

    def test_invalid_window(self, catalog):
        learner = AssociationRuleLearner(catalog)
        with pytest.raises(ValueError, match="window"):
            learner.transactions(chain_log(), window=0.0)


class TestTraining:
    def test_mines_the_planted_rule(self, catalog):
        learner = AssociationRuleLearner(catalog)
        rules = learner.train(chain_log(10), window=300.0)
        keys = {(tuple(sorted(r.antecedent)), r.consequent) for r in rules}
        assert ((W1, W2), FATAL) in keys
        planted = next(
            r
            for r in rules
            if r.antecedent == frozenset({W1, W2}) and r.consequent == FATAL
        )
        assert planted.confidence == pytest.approx(1.0)
        assert planted.support == pytest.approx(1.0)

    def test_rules_are_sorted_by_quality(self, catalog):
        rules = AssociationRuleLearner(catalog).train(chain_log(10), 300.0)
        confidences = [r.confidence for r in rules]
        assert confidences == sorted(confidences, reverse=True)

    def test_confidence_reflects_noise(self, catalog):
        # W3 appears 10 times, followed by FATAL2 only half the time
        specs = []
        for i in range(10):
            t = (i + 1) * 5000.0
            specs.append((t - 30.0, W3, {"severity": Severity.WARNING}))
            if i % 2 == 0:
                specs.append((t, FATAL2, {"severity": Severity.FATAL}))
        # confidence within failure-preceding transactions is 1.0 (all
        # transactions that contain W3 also contain FATAL2) — the learner
        # mines permissively; the reviser later penalizes the noise.
        rules = AssociationRuleLearner(catalog).train(make_log(specs), 300.0)
        planted = [r for r in rules if r.consequent == FATAL2]
        assert planted and planted[0].support == pytest.approx(1.0)

    def test_min_support_filters_rare_patterns(self, catalog):
        log = chain_log(1)  # a single occurrence
        learner = AssociationRuleLearner(catalog, min_support=0.5)
        other = chain_log(1, extra=[
            ((i + 1) * 3000.0 + 7.0, W3, {"severity": Severity.WARNING})
            for i in range(20)
        ])
        # with one transaction every itemset has support 1.0; add another
        # fatal with a different precursor to dilute
        assert len(learner.train(log, 300.0)) >= 1

    def test_antecedents_never_contain_fatal_codes(self, catalog):
        # two fatals in one window: the earlier fatal must not become an
        # antecedent of the later one
        specs = [
            (100.0, W1, {"severity": Severity.WARNING}),
            (150.0, FATAL2, {"severity": Severity.FATAL}),
            (200.0, FATAL, {"severity": Severity.FATAL}),
        ] * 1
        specs = [(t + i * 5000.0, c, k) for i in range(8) for (t, c, k) in specs]
        rules = AssociationRuleLearner(catalog).train(make_log(specs), 300.0)
        fatal_codes = {t.code for t in catalog.fatal_types()}
        for r in rules:
            assert not (r.antecedent & fatal_codes)

    def test_max_antecedent_respected(self, catalog):
        learner = AssociationRuleLearner(catalog, max_antecedent=1)
        rules = learner.train(chain_log(10), 300.0)
        assert all(len(r.antecedent) == 1 for r in rules)

    def test_empty_log_no_rules(self, catalog):
        from repro.raslog.store import EventLog

        assert AssociationRuleLearner(catalog).train(EventLog(), 300.0) == []

    def test_returns_association_rules_only(self, catalog):
        rules = AssociationRuleLearner(catalog).train(chain_log(5), 300.0)
        assert all(isinstance(r, AssociationRule) for r in rules)

    def test_parameter_validation(self, catalog):
        with pytest.raises(ValueError, match="min_support"):
            AssociationRuleLearner(catalog, min_support=0.0)
        with pytest.raises(ValueError, match="min_confidence"):
            AssociationRuleLearner(catalog, min_confidence=2.0)
        with pytest.raises(ValueError, match="max_antecedent"):
            AssociationRuleLearner(catalog, max_antecedent=0)

    def test_paper_defaults(self, catalog):
        learner = AssociationRuleLearner(catalog)
        assert learner.min_support == 0.01
        assert learner.min_confidence == 0.1
