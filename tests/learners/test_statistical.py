"""Unit tests for the statistical-rule base learner."""

import numpy as np
import pytest

from repro.learners.statistical import StatisticalRuleLearner
from repro.raslog.events import Severity
from tests.conftest import make_log

FATAL = "KERNEL-F-000"


def fatal_log(times):
    return make_log([(t, FATAL, {"severity": Severity.FATAL}) for t in times])


class TestBurstStatistics:
    def test_counts_at_least_k(self, catalog):
        learner = StatisticalRuleLearner(catalog)
        # bursts of 3 failures 50 s apart, separated by long gaps
        times = []
        for i in range(10):
            base = i * 10_000.0
            times += [base, base + 50.0, base + 100.0]
        stats = learner.burst_statistics(np.array(times), window=300.0)
        # every event sees >= 1 fatal; 20 of 30 see >= 2; 10 see >= 3
        assert stats[1][0] == 30
        assert stats[2][0] == 20
        assert stats[3][0] == 10
        assert 4 not in stats

    def test_followed_fraction(self, catalog):
        learner = StatisticalRuleLearner(catalog)
        times = []
        for i in range(10):
            base = i * 10_000.0
            times += [base, base + 50.0, base + 100.0]
        stats = learner.burst_statistics(np.array(times), window=300.0)
        n1, f1 = stats[1]
        assert f1 == 20  # first two of each burst are followed
        n2, f2 = stats[2]
        assert f2 == 10  # the middle event of each burst

    def test_empty(self, catalog):
        learner = StatisticalRuleLearner(catalog)
        assert learner.burst_statistics(np.array([]), 300.0) == {}

    def test_invalid_window(self, catalog):
        with pytest.raises(ValueError, match="window"):
            StatisticalRuleLearner(catalog).burst_statistics(np.array([1.0]), 0.0)


class TestTraining:
    def test_learns_burst_rule(self, catalog):
        # bursts of 5: P(another | >=2 within window) is high
        times = []
        for i in range(12):
            base = i * 50_000.0
            times += [base + j * 60.0 for j in range(5)]
        log = fatal_log(times)
        rules = StatisticalRuleLearner(catalog, threshold=0.7).train(log, 300.0)
        assert any(r.k == 2 for r in rules)
        for r in rules:
            assert r.probability >= 0.7
            assert r.window == 300.0

    def test_no_rules_when_failures_isolated(self, catalog):
        times = [i * 50_000.0 for i in range(30)]
        rules = StatisticalRuleLearner(catalog, threshold=0.5).train(
            fatal_log(times), 300.0
        )
        assert rules == []

    def test_min_samples_guards_small_k(self, catalog):
        # a single burst of 8 gives k=5..8 tiny sample sizes
        times = [j * 30.0 for j in range(8)] + [90_000.0 + i * 50_000.0 for i in range(4)]
        learner = StatisticalRuleLearner(catalog, threshold=0.1, min_samples=6)
        rules = learner.train(fatal_log(times), 300.0)
        assert all(r.k <= 8 for r in rules)
        stats = learner.burst_statistics(fatal_log(times).timestamps, 300.0)
        for r in rules:
            assert stats[r.k][0] >= 6

    def test_probability_estimates_match_stats(self, catalog):
        times = []
        for i in range(15):
            base = i * 20_000.0
            times += [base, base + 100.0]
        learner = StatisticalRuleLearner(catalog, threshold=0.4)
        log = fatal_log(times)
        rules = learner.train(log, 300.0)
        stats = learner.burst_statistics(log.timestamps, 300.0)
        for r in rules:
            n, f = stats[r.k]
            assert r.probability == pytest.approx(f / n)

    def test_parameter_validation(self, catalog):
        with pytest.raises(ValueError, match="threshold"):
            StatisticalRuleLearner(catalog, threshold=0.0)
        with pytest.raises(ValueError, match="max_k"):
            StatisticalRuleLearner(catalog, max_k=0)
        with pytest.raises(ValueError, match="min_samples"):
            StatisticalRuleLearner(catalog, min_samples=0)

    def test_paper_default_threshold(self, catalog):
        assert StatisticalRuleLearner(catalog).threshold == 0.8

    def test_on_synthetic_trace(self, mid_trace):
        """The generator's storm cascades produce the paper-style rule."""
        learner = StatisticalRuleLearner(mid_trace.catalog)
        rules = learner.train(mid_trace.clean, 300.0)
        assert rules, "expected burst rules from the storm-cascade process"
        assert any(r.probability > 0.8 for r in rules)
