"""Shared fixtures: catalogs, event factories and cached synthetic traces."""

from __future__ import annotations

import os
import socket

import pytest

from repro.raslog.catalog import default_catalog
from repro.raslog.events import Facility, RASEvent, Severity
from repro.raslog.generator import GeneratorConfig, generate_log
from repro.raslog.profiles import ANL_PROFILE, SDSC_PROFILE
from repro.raslog.store import EventLog


def _sockets_unavailable() -> str | None:
    """Why ``net``-marked tests cannot run here, or None if they can."""
    if os.environ.get("REPRO_SKIP_NET_TESTS"):
        return "REPRO_SKIP_NET_TESTS is set"
    try:
        with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as probe:
            probe.bind(("127.0.0.1", 0))
    except OSError as exc:
        return f"cannot bind a loopback socket: {exc}"
    return None


def _subprocess_unavailable() -> str | None:
    """Why ``subprocess``-marked tests cannot run here, or None."""
    if os.environ.get("REPRO_SKIP_SUBPROCESS_TESTS"):
        return "REPRO_SKIP_SUBPROCESS_TESTS is set"
    import multiprocessing

    methods = multiprocessing.get_all_start_methods()
    if not methods:
        return "no multiprocessing start methods available"
    wanted = os.environ.get("REPRO_MP_START_METHOD")
    if wanted and wanted not in methods:
        return f"start method {wanted!r} unavailable (have {methods})"
    return None


def pytest_collection_modifyitems(config, items):
    for marker, probe, label in (
        ("net", _sockets_unavailable, "net"),
        ("subprocess", _subprocess_unavailable, "subprocess backend"),
    ):
        reason = probe()
        if reason is None:
            continue
        skip = pytest.mark.skip(reason=f"{label} tests skipped: {reason}")
        for item in items:
            if marker in item.keywords:
                item.add_marker(skip)


@pytest.fixture(scope="session")
def catalog():
    return default_catalog()


@pytest.fixture(scope="session")
def small_trace():
    """Small SDSC trace with duplicates, for preprocessing tests."""
    return generate_log(
        SDSC_PROFILE,
        GeneratorConfig(scale=0.3, weeks=10, seed=42, duplicates=True),
    )


@pytest.fixture(scope="session")
def mid_trace():
    """40-week full-volume SDSC trace (logical events only)."""
    return generate_log(
        SDSC_PROFILE,
        GeneratorConfig(scale=1.0, weeks=40, seed=7, duplicates=False),
    )


@pytest.fixture(scope="session")
def anl_trace():
    """30-week ANL trace (logical events only)."""
    return generate_log(
        ANL_PROFILE,
        GeneratorConfig(scale=0.5, weeks=30, seed=5, duplicates=False),
    )


def make_event(
    timestamp: float,
    entry_data: str = "some event",
    facility: Facility = Facility.KERNEL,
    severity: Severity = Severity.INFO,
    location: str = "R00-M0-N00",
    job_id: int = 1,
    record_id: int = 0,
) -> RASEvent:
    """Terse event constructor for unit tests."""
    return RASEvent(
        record_id=record_id,
        event_type="RAS",
        timestamp=timestamp,
        job_id=job_id,
        location=location,
        entry_data=entry_data,
        facility=facility,
        severity=severity,
    )


def make_log(specs, origin: float = 0.0) -> EventLog:
    """Build an EventLog from (timestamp, entry_data[, kwargs]) tuples."""
    events = []
    for i, spec in enumerate(specs):
        t, code, *rest = spec
        kwargs = rest[0] if rest else {}
        events.append(make_event(t, code, record_id=i, **kwargs))
    return EventLog(events, origin=origin)


@pytest.fixture
def event_factory():
    return make_event


@pytest.fixture
def log_factory():
    return make_log
