"""Chaos suite: the resilience contracts under injected faults.

Every test here installs a deterministic :class:`repro.faults.FaultPlan`
(or corrupts its input with the seedable helpers) and pins the promised
behaviour: degraded-mode sessions keep predicting and recover, broken
pools fall back to serial training, garbage in the stream is skipped and
counted, and clock jitter within the reorder slack changes nothing.

Run with ``pytest -m chaos`` (deselected from the default suite).
"""

import pytest

from repro import faults, observe
from repro.core.framework import DynamicMetaLearningFramework, FrameworkConfig
from repro.core.online import OnlinePredictionSession
from repro.faults import (
    FaultInjected,
    FaultPlan,
    LearnerCrash,
    PoolBreak,
    ShardKill,
)
from repro.parallel.executor import SerialExecutor, ThreadExecutor
from repro.raslog.parser import ParseError, ParseReport, dump_log, load_log
from repro.resilience.degrade import backoff_delay
from repro.service import PredictionService, ShardDown
from repro.utils.timeutil import WEEK_SECONDS
from tests.conftest import make_event, make_log

pytestmark = pytest.mark.chaos

PRECURSOR_A = "KERNEL-N-002"
PRECURSOR_B = "KERNEL-N-003"
FATAL = "KERNEL-F-000"


def pattern_log(weeks=8):
    period = 10_800.0
    specs = []
    t = 600.0
    while t + 120.0 < weeks * WEEK_SECONDS:
        specs += [(t, PRECURSOR_A), (t + 60.0, PRECURSOR_B), (t + 120.0, FATAL)]
        t += period
    return make_log(specs)


def degrade_config(**overrides):
    return FrameworkConfig(
        initial_train_weeks=2,
        retrain_weeks=2,
        on_retrain_error="degrade",
        **overrides,
    )


def stream(session, events):
    for event in events:
        session.ingest(event)
    return session


class TestDegradedSession:
    def test_transient_crash_absorbed_and_retried(self, catalog):
        """The degraded-mode contract: one crashing retraining neither
        kills the session nor silences it — the previous rules keep
        predicting, the failure is recorded, and the backoff-elapsed
        retry lands on the next ingest, not the next boundary."""
        log = pattern_log()
        plan = FaultPlan(learner_crashes=[LearnerCrash(week=4, attempts=1)])
        registry = observe.MetricsRegistry()
        session = OnlinePredictionSession(degrade_config(), catalog=catalog)
        with observe.use_registry(registry), faults.install(plan):
            stream(session, log)

        assert plan.injected == ["train:4:1"]
        assert len(session.retrain_failures) == 1
        failure = session.retrain_failures[0]
        assert failure.week == 4
        assert failure.attempt == 1
        assert failure.error_type == "FaultInjected"
        # the retry succeeded well before the next boundary
        assert [r.week for r in session.retrains] == [2, 4, 6]
        retry_gap = session.retrains[1].week * WEEK_SECONDS  # boundary
        assert failure.time - retry_gap < 10_800.0  # failed near boundary
        assert not session.degraded
        assert registry.counter("online.retrain_failures").value == 1
        assert registry.counter("online.degraded_seconds").value > 0
        # warnings kept flowing after the failed retraining
        assert any(w.time > failure.time for w in session.warnings)
        assert session.summary().retrain_failures == session.retrain_failures

    def test_persistent_crash_backs_off_until_next_boundary(self, catalog):
        """A persistently failing week keeps the old rules alive; the
        retry cadence respects exponential backoff and the next healthy
        boundary recovers the session."""
        log = pattern_log()
        plan = FaultPlan(
            learner_crashes=[LearnerCrash(week=4, attempts=10**9)]
        )
        config = degrade_config(
            retrain_backoff_base=3600.0, retrain_backoff_cap=14_400.0
        )
        session = OnlinePredictionSession(config, catalog=catalog)
        with faults.install(plan):
            stream(session, log)

        failures = session.retrain_failures
        assert len(failures) >= 3
        assert all(f.week == 4 for f in failures)
        assert [f.attempt for f in failures] == list(
            range(1, len(failures) + 1)
        )
        for earlier, later in zip(failures, failures[1:]):
            assert later.time - earlier.time >= backoff_delay(
                earlier.attempt, 3600.0, 14_400.0
            )
        # week 6 is healthy: it supersedes the owed week and recovers
        assert [r.week for r in session.retrains] == [2, 6]
        assert not session.degraded
        # the old rules kept predicting through the degraded stretch
        degraded_span = (failures[0].time, session.retrains[-1].week * WEEK_SECONDS)
        assert any(
            degraded_span[0] < w.time < degraded_span[1]
            for w in session.warnings
        )

    def test_raise_mode_still_fails_fast(self, catalog):
        log = pattern_log(6)
        plan = FaultPlan(learner_crashes=[LearnerCrash(week=4, attempts=1)])
        config = FrameworkConfig(initial_train_weeks=2, retrain_weeks=2)
        session = OnlinePredictionSession(config, catalog=catalog)
        with faults.install(plan), pytest.raises(FaultInjected):
            stream(session, log)

    def test_degraded_checkpoint_resumes_identically(self, catalog, tmp_path):
        """Killing a session *while degraded* and resuming reproduces the
        uninterrupted faulted run exactly — backoff clock, attempt
        counter and failure records all survive the round trip."""
        log = pattern_log()
        events = list(log)
        config = degrade_config(
            retrain_backoff_base=3600.0, retrain_backoff_cap=14_400.0
        )

        def crash_plan():
            return FaultPlan(
                learner_crashes=[LearnerCrash(week=4, attempts=10**9)]
            )

        reference = OnlinePredictionSession(config, catalog=catalog)
        with faults.install(crash_plan()):
            stream(reference, events)

        cut = next(
            i
            for i, e in enumerate(events)
            if e.timestamp > reference.retrain_failures[1].time
        )
        first = OnlinePredictionSession(config, catalog=catalog)
        with faults.install(crash_plan()):
            stream(first, events[:cut])
        assert first.degraded
        path = tmp_path / "degraded.ckpt"
        first.checkpoint(path)

        resumed = OnlinePredictionSession.resume(path, config, catalog=catalog)
        assert resumed.degraded
        with faults.install(crash_plan()):
            stream(resumed, events[resumed.n_ingested:])
        assert resumed.warnings == reference.warnings
        # the error text embeds the fresh plan's own attempt counter, so
        # compare the session-owned fields
        assert [
            (f.week, f.error_type, f.attempt, f.time)
            for f in resumed.retrain_failures
        ] == [
            (f.week, f.error_type, f.attempt, f.time)
            for f in reference.retrain_failures
        ]
        assert [r.week for r in resumed.retrains] == [
            r.week for r in reference.retrains
        ]


class TestDegradedBatch:
    def test_framework_degrade_records_and_retries(self, catalog):
        log = pattern_log()
        plan = FaultPlan(learner_crashes=[LearnerCrash(week=4, attempts=1)])
        framework = DynamicMetaLearningFramework(
            degrade_config(), catalog=catalog
        )
        with faults.install(plan):
            result = framework.run(log)
        assert [f.week for f in result.retrain_failures] == [4]
        # the owed retraining lands on the next week of the sweep
        assert [r.week for r in result.retrains] == [2, 5, 6]

    def test_framework_default_raises(self, catalog):
        log = pattern_log(6)
        plan = FaultPlan(learner_crashes=[LearnerCrash(week=4, attempts=1)])
        config = FrameworkConfig(initial_train_weeks=2, retrain_weeks=2)
        with faults.install(plan), pytest.raises(FaultInjected):
            DynamicMetaLearningFramework(config, catalog=catalog).run(log)


class TestBrokenPool:
    def test_pool_break_falls_back_to_serial(self, catalog):
        """An injected BrokenProcessPool mid-retraining costs nothing
        visible: training completes serially and the session proceeds."""
        log = pattern_log(6)
        plan = FaultPlan(pool_breaks=[PoolBreak(times=1)])
        registry = observe.MetricsRegistry()
        config = FrameworkConfig(initial_train_weeks=2, retrain_weeks=2)
        session = OnlinePredictionSession(
            config,
            catalog=catalog,
            executor=ThreadExecutor(max_workers=2),
            own_executor=True,
        )
        with observe.use_registry(registry), faults.install(plan), session:
            stream(session, log)
        assert plan.injected == ["pool:1"]
        assert registry.counter("meta.train.serial_fallback").value == 1
        assert isinstance(session.meta.executor, SerialExecutor)
        assert [r.week for r in session.retrains] == [2, 4]
        assert session.warnings


FLEET_LOCS = ["R00-M0-N00", "R01-M1-N01", "R02-M0-N03"]


def fleet_pattern_log(weeks=8, locations=FLEET_LOCS):
    """Per-location pattern streams merged into one time-sorted fleet log."""
    events = []
    rid = 0
    for offset, location in enumerate(locations):
        t = 600.0 + offset * 37.0
        while t + 120.0 < weeks * WEEK_SECONDS:
            for dt, code in (
                (0.0, PRECURSOR_A),
                (60.0, PRECURSOR_B),
                (120.0, FATAL),
            ):
                events.append(
                    make_event(t + dt, code, location=location, record_id=rid)
                )
                rid += 1
            t += 10_800.0
    events.sort(key=lambda e: (e.timestamp, e.record_id))
    return events


class TestShardKill:
    def test_kill_one_shard_fleet_keeps_serving_and_recovers(
        self, catalog, tmp_path
    ):
        """The blast-radius contract: a chaos kill of one shard leaves
        every other shard's warnings untouched, and full-fleet recovery
        from the per-shard journals reproduces the uninterrupted run
        exactly — victim included."""
        events = fleet_pattern_log()
        config = degrade_config()
        victim = FLEET_LOCS[1]

        reference = PredictionService(config, catalog=catalog)
        for event in events:
            reference.ingest(event)
        reference.flush()

        fleet = tmp_path / "fleet"
        plan = FaultPlan(shard_kills=[ShardKill(shard=victim, at_count=50)])
        registry = observe.MetricsRegistry()
        service = PredictionService(
            config, catalog=catalog, fleet_dir=fleet, journal_fsync="never"
        )
        down_rejections = 0
        with observe.use_registry(registry), faults.install(plan):
            for event in events:
                try:
                    service.ingest(event)
                except FaultInjected:
                    pass  # the kill: event was never durable
                except ShardDown:
                    down_rejections += 1  # victim stays down, fleet serves on
            service.flush()
        assert plan.injected == [f"shard:{victim}:50"]
        assert service.down_shards == {victim}
        assert down_rejections > 0
        assert registry.counter("service.shard_kills", shard=victim).value == 1
        # the survivors never noticed
        for key in FLEET_LOCS:
            if key == victim:
                continue
            assert (
                service.session(key).warnings
                == reference.session(key).warnings
            )
        service.close()

        # full-fleet recovery: journals bring the victim back, then
        # re-delivering each shard's missing tail converges on the
        # uninterrupted run
        recovered = PredictionService.recover(
            fleet, catalog=catalog, journal_fsync="never"
        )
        assert recovered.down_shards == set()
        skipped = {
            k: recovered.session(k).n_ingested for k in recovered.shard_keys
        }
        for event in events:
            key = recovered.router.key(event)
            if skipped.get(key, 0) > 0:
                skipped[key] -= 1
                continue
            recovered.ingest(event)
        recovered.flush()
        for key in FLEET_LOCS:
            assert (
                recovered.session(key).warnings
                == reference.session(key).warnings
            )
        ours, theirs = recovered.summary(), reference.summary()
        assert (ours.n_events, ours.n_fatal, ours.n_warnings) == (
            theirs.n_events,
            theirs.n_fatal,
            theirs.n_warnings,
        )
        assert ours.precision == theirs.precision
        assert ours.recall == theirs.recall
        recovered.close()

    def test_kill_during_degraded_retraining(self, catalog, tmp_path):
        """Composed faults: the victim shard is killed while the whole
        fleet is absorbing retrain crashes in degraded mode; recovery
        restores the victim's degraded-mode bookkeeping from disk."""
        events = fleet_pattern_log()
        config = degrade_config()
        victim = FLEET_LOCS[0]
        kill_plan = FaultPlan(
            learner_crashes=[LearnerCrash(week=4, attempts=10**9)],
            shard_kills=[ShardKill(shard=victim, at_count=120)],
        )
        fleet = tmp_path / "fleet"
        service = PredictionService(
            config, catalog=catalog, fleet_dir=fleet, journal_fsync="never"
        )
        with faults.install(kill_plan):
            for event in events:
                try:
                    service.ingest(event)
                except (FaultInjected, ShardDown):
                    continue
            service.flush()
        assert service.down_shards == {victim}
        assert any(f"shard:{victim}" in r for r in kill_plan.injected)
        assert any(r.startswith("train:") for r in kill_plan.injected)
        service.close()

        reference = PredictionService(config, catalog=catalog)
        with faults.install(
            FaultPlan(learner_crashes=[LearnerCrash(week=4, attempts=10**9)])
        ):
            for event in events:
                reference.ingest(event)
            reference.flush()

            recovered = PredictionService.recover(
                fleet, catalog=catalog, journal_fsync="never"
            )
            skipped = {
                k: recovered.session(k).n_ingested
                for k in recovered.shard_keys
            }
            for event in events:
                key = recovered.router.key(event)
                if skipped.get(key, 0) > 0:
                    skipped[key] -= 1
                    continue
                recovered.ingest(event)
            recovered.flush()
        for key in FLEET_LOCS:
            assert (
                recovered.session(key).warnings
                == reference.session(key).warnings
            )
        recovered.close()


class TestCorruptedStream:
    def test_corrupt_lines_skipped_and_counted(self, tmp_path):
        log = pattern_log(2)
        path = tmp_path / "trace.log"
        dump_log(log, path)
        lines = path.read_text().splitlines()
        corrupted = faults.corrupt_lines(lines, fraction=0.2, seed=11)
        assert corrupted != lines
        path.write_text("\n".join(corrupted) + "\n")

        report = ParseReport()
        parsed = load_log(path, report=report)
        assert report.skipped > 0
        assert len(parsed) == report.parsed
        assert len(parsed) < len(log)

        with pytest.raises(ParseError):
            load_log(path, strict=True)

    def test_jitter_within_slack_is_equivalent(self, catalog):
        """Clock jitter smaller than the reorder slack is fully healed:
        the tolerant session reproduces the warnings of a strict run
        over the time-sorted stream."""
        log = pattern_log(6)
        jittered = faults.jitter_timestamps(
            list(log), fraction=0.3, max_jitter=120.0, seed=3
        )
        assert [e.timestamp for e in jittered] != [e.timestamp for e in log]

        strict = OnlinePredictionSession(
            FrameworkConfig(initial_train_weeks=2, retrain_weeks=2),
            catalog=catalog,
        )
        stream(strict, sorted(jittered, key=lambda e: e.timestamp))

        tolerant = OnlinePredictionSession(
            FrameworkConfig(
                initial_train_weeks=2, retrain_weeks=2, reorder_slack=300.0
            ),
            catalog=catalog,
        )
        stream(tolerant, jittered)
        tolerant.flush()
        assert tolerant.n_quarantined == 0
        assert tolerant.warnings == strict.warnings
