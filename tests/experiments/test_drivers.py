"""Smoke + shape tests for every experiment driver (DESIGN.md index)."""

import pytest

from repro.experiments import (
    figure4,
    figure5,
    figure8,
    q1_meta,
    q2_retrain_period,
    q2_reviser,
    q2_rule_churn,
    q2_training_size,
    q3_window,
    table2,
    table3,
    table4,
    table5,
)

SEED = 7


class TestTable2:
    def test_rows_and_projection(self):
        table = table2.run(scale=0.005, seed=SEED)
        assert [r["log"] for r in table.rows] == ["ANL", "SDSC"]
        for row in table.rows:
            assert row["events"] > 0
            assert row["events_scaled_up"] == int(row["events"] / 0.005)
        # ANL generates far more raw records than SDSC (KERNEL duplication)
        assert table.rows[0]["events"] > table.rows[1]["events"]


class TestTable3:
    def test_matches_paper_exactly(self):
        table = table3.run()
        for row in table.rows:
            assert row["fatal"] == row["paper_fatal"]
            assert row["nonfatal"] == row["paper_nonfatal"]
        assert table.rows[-1]["fatal"] == 69
        assert table.rows[-1]["nonfatal"] == 150


class TestTable4:
    def test_sweep_shape(self):
        table, sweep = table4.run("SDSC", scale=0.01, seed=SEED)
        assert sweep.totals == sorted(sweep.totals, reverse=True)
        # ≥90% compression at the paper's threshold on this substrate
        rates = sweep.compression_rates()
        idx_300 = list(sweep.thresholds).index(300.0)
        assert rates[idx_300] > 0.9
        # diminishing returns: the 300→400 s step removes little
        assert (sweep.totals[idx_300] - sweep.totals[-1]) < 0.02 * sweep.totals[0]
        assert table.rows[-1]["facility"] == "TOTAL"


class TestTable5:
    def test_overhead_shape(self):
        table, records = table5.run(
            "SDSC", scale=1.0, seed=SEED, months=(3, 6, 12, 18), matching_weeks=2
        )
        # association mining dominates and grows with training size (skip
        # the first record, which carries one-time import warmup)
        asso = [r.generation["association"] for r in records]
        assert asso[-1] > asso[1]
        # online rule matching stays trivially cheap (Observation #8)
        for r in records:
            assert r.rule_matching < 1.0
        assert len(table) == 4


class TestFigure4:
    def test_burstiness(self):
        table, daily = figure4.run("SDSC", weeks=30, seed=SEED)
        stats = {r["statistic"]: r["value"] for r in table.rows}
        assert stats["index_of_dispersion"] > 2.0
        assert stats["frac_gaps_<=300s"] > 0.3
        assert int(daily.sum()) == stats["total_fatal"]


class TestFigure5:
    def test_fit_selection(self):
        fit_table, cdf_table = figure5.run("SDSC", weeks=40, seed=SEED)
        assert len(fit_table) == 3
        best_rows = [r for r in fit_table.rows if r["best"]]
        assert len(best_rows) == 1
        # empirical and fitted CDFs are both monotone over the references
        emp = cdf_table.column("empirical")
        fit = cdf_table.column("fitted_best")
        assert emp == sorted(emp)
        assert fit == sorted(fit)
        assert all(0.0 <= v <= 1.0 for v in emp + fit)


class TestQ1Meta:
    @pytest.fixture(scope="class")
    def q1(self):
        return q1_meta.run("SDSC", weeks=40, seed=SEED)

    def test_meta_beats_base_recall(self, q1):
        table, results = q1
        from repro.evaluation.timeline import mean_accuracy

        recalls = {m: mean_accuracy(r.weekly)[1] for m, r in results.items()}
        assert recalls["meta"] >= max(
            recalls["association"], recalls["statistical"]
        )
        assert recalls["meta"] > recalls["association"] * 1.5

    def test_association_among_worst_recall(self, q1):
        # the paper: association rules have the worst recall (≈75 % of
        # fatals have no precursor); allow a statistical tie at the bottom
        _, results = q1
        from repro.evaluation.timeline import mean_accuracy

        recalls = {m: mean_accuracy(r.weekly)[1] for m, r in results.items()}
        assert recalls["association"] <= min(recalls.values()) + 0.05
        assert recalls["association"] < recalls["statistical"]
        assert recalls["association"] < recalls["meta"]

    def test_table_columns(self, q1):
        table, _ = q1
        assert "p_meta" in table.columns and "r_distribution" in table.columns
        assert len(table) > 0


class TestFigure8:
    def test_venn_shape(self):
        table, venn = figure8.run("SDSC", seed=SEED, span=(30, 36))
        assert venn.n_fatal > 0
        # distribution covers the most, association the least (paper order)
        cov = {n: venn.coverage_fraction(n) for n in venn.names}
        assert cov["distribution"] >= cov["statistical"] >= cov["association"]
        assert venn.multi_captured > 0


class TestQ2TrainingSize:
    def test_policy_ordering(self):
        table, results = q2_training_size.run("SDSC", weeks=48, seed=SEED)
        from repro.evaluation.timeline import mean_accuracy

        recall = {
            name: mean_accuracy(r.weekly)[1] for name, r in results.items()
        }
        # dynamic-6mo within striking distance of dynamic-whole; static and
        # 3-month both behind 6-month on this short horizon
        assert recall["dynamic-6mo"] >= recall["dynamic-3mo"] - 0.08
        assert set(table.columns) >= {"week", "p_static", "r_dynamic-whole"}


class TestQ2RetrainPeriod:
    def test_runs_all_windows(self):
        table, results = q2_retrain_period.run(
            "SDSC", weeks=42, seed=SEED, retrain_windows=(2, 8)
        )
        assert set(results) == {2, 8}
        assert len(results[2].retrains) > len(results[8].retrains)


class TestQ2Reviser:
    def test_reviser_does_not_hurt_precision(self):
        _, results = q2_reviser.run("SDSC", weeks=40, seed=SEED)
        from repro.evaluation.timeline import mean_accuracy

        p_rev, _ = mean_accuracy(results["revised"].weekly)
        p_unrev, _ = mean_accuracy(results["unrevised"].weekly)
        assert p_rev >= p_unrev - 0.02


class TestQ2RuleChurn:
    def test_churn_series(self):
        table, result = q2_rule_churn.run("SDSC", weeks=44, seed=SEED)
        assert len(table) == len(result.churn)
        first = result.churn.records[0]
        assert first.unchanged == 0  # initial training adds everything
        later = result.churn.records[1:]
        assert any(r.added > 0 for r in later)
        assert any(r.removed_by_reviser > 0 for r in later)


class TestQ3Window:
    def test_recall_grows_with_window(self):
        table, _ = q3_window.run(
            "SDSC", weeks=40, seed=SEED, windows=(300.0, 7200.0)
        )
        recalls = table.column("recall")
        assert recalls[-1] >= recalls[0]
        assert len(table) == 2
