"""Unit tests for experiment workload construction and caching."""

import pytest

from repro.experiments.config import (
    DEFAULT_SEED,
    ExperimentSetup,
    clear_cache,
    make_log,
)


class TestExperimentSetup:
    def test_validates_system_early(self):
        with pytest.raises(KeyError, match="unknown system"):
            ExperimentSetup(system="CRAY")

    def test_defaults(self):
        setup = ExperimentSetup()
        assert setup.system == "SDSC"
        assert setup.seed == DEFAULT_SEED
        assert not setup.duplicates


class TestMakeLog:
    def test_caches_identical_requests(self):
        a = make_log("SDSC", weeks=4, seed=1)
        b = make_log("SDSC", weeks=4, seed=1)
        assert a is b

    def test_distinct_requests_not_shared(self):
        a = make_log("SDSC", weeks=4, seed=1)
        b = make_log("SDSC", weeks=4, seed=2)
        assert a is not b

    def test_clear_cache_drops_instances(self):
        a = make_log("SDSC", weeks=4, seed=1)
        clear_cache()
        b = make_log("SDSC", weeks=4, seed=1)
        assert a is not b
        # deterministic regeneration nonetheless
        assert len(a.clean) == len(b.clean)

    def test_weeks_override(self):
        syn = make_log("ANL", weeks=3, seed=1)
        assert syn.profile.weeks == 3
