"""Crash-consistency property suite: kill at any event index, recover,
and the warning stream is identical to an uninterrupted run.

The contract under test (the journal's whole reason to exist): with a
write-ahead :class:`EventJournal` attached, checkpoint+journal recovery
loses *nothing* — not even the events ingested after the last
checkpoint.  Kills are sampled across two retraining boundaries and
include kills mid-degraded-mode and kills that tear the final journal
record mid-write (injected through :class:`repro.faults.JournalFault`).

Runs under ``pytest -m chaos`` (deselected from the default suite).
"""

from __future__ import annotations

from contextlib import nullcontext

import pytest

from repro import faults
from repro.core.framework import DynamicMetaLearningFramework, FrameworkConfig
from repro.core.online import OnlinePredictionSession
from repro.faults import FaultInjected, FaultPlan, JournalFault, LearnerCrash
from repro.resilience import EventJournal
from repro.utils.timeutil import WEEK_SECONDS
from tests.adapt.conftest import shift_log
from tests.resilience.conftest import pattern_log

pytestmark = pytest.mark.chaos

#: Checkpoint cadence (events) for the killed runs: small enough that
#: kills land both before the first checkpoint and many events past one.
CKPT_EVERY = 150

#: Small segments so kills also land on freshly rotated segments.
SEGMENT_BYTES = 16_384

EVENTS = list(pattern_log(8))


def first_index_at(week: int, events: list | None = None) -> int:
    boundary = week * WEEK_SECONDS
    return next(
        i
        for i, e in enumerate(events if events is not None else EVENTS)
        if e.timestamp >= boundary
    )


def sampled_kill_indices() -> list[int]:
    """Kill points across the week-4 and week-6 retraining boundaries,
    plus before-the-first-checkpoint and exactly-on-a-checkpoint."""
    kills = {80, CKPT_EVERY}  # pre-first-checkpoint; exactly on one
    for week in (4, 6):
        at = first_index_at(week)
        kills.update({at - 1, at, at + 2})
    return sorted(kills)


KILL_INDICES = sampled_kill_indices()


def base_config(**overrides) -> FrameworkConfig:
    return FrameworkConfig(
        initial_train_weeks=2, retrain_weeks=2, **overrides
    )


def run_uninterrupted(config, catalog, plan=None, events=None):
    events = EVENTS if events is None else events
    session = OnlinePredictionSession(config, catalog=catalog)
    with faults.install(plan) if plan else nullcontext():
        for event in events:
            session.ingest(event)
    return session


def run_until_killed(
    config, catalog, workdir, kill, plan=None, torn=False, events=None
):
    """Stream with journal+checkpoints and die at event index ``kill``.

    A clean kill stops before ingesting ``EVENTS[kill]``; a torn kill
    dies *inside* the journal append of that event (``JournalFault``),
    leaving a partial record on disk.  Either way nothing is flushed or
    checkpointed on the way out — exactly what a dead process leaves.
    """
    events = EVENTS if events is None else events
    if torn:
        torn_fault = JournalFault(record=kill, mode="torn", keep_bytes=10)
        plan = plan or FaultPlan()
        plan.journal_faults.append(torn_fault)
    journal = EventJournal(
        workdir / "wal", fsync="never", segment_bytes=SEGMENT_BYTES
    )
    session = OnlinePredictionSession(
        config, catalog=catalog, journal=journal
    )
    with faults.install(plan) if plan else nullcontext():
        try:
            for i, event in enumerate(events):
                if not torn and i == kill:
                    break
                session.ingest(event)
                if (i + 1) % CKPT_EVERY == 0:
                    session.checkpoint(workdir / "s.ckpt")
        except FaultInjected as exc:
            assert torn and "torn write" in str(exc)
        else:
            assert not torn
    # With fsync="never", close() does no fsync: the on-disk state is
    # exactly the raw os.write()s — what a SIGKILL would have left.
    journal.close()


def recover_and_finish(config, catalog, workdir, plan=None, events=None):
    """Recover, then feed the rest of the stream from where the dead
    session left off; returns ``(session, n_ingested_at_recovery)``."""
    events = EVENTS if events is None else events
    journal = EventJournal(
        workdir / "wal", fsync="never", segment_bytes=SEGMENT_BYTES
    )
    with faults.install(plan) if plan else nullcontext():
        session = OnlinePredictionSession.recover(
            workdir / "s.ckpt", journal, config, catalog=catalog
        )
        recovered_at = session.n_ingested
        for event in events[recovered_at:]:
            session.ingest(event)
    journal.close()
    return session, recovered_at


def assert_equivalent(recovered, reference):
    assert recovered.warnings == reference.warnings
    assert [r.week for r in recovered.retrains] == [
        r.week for r in reference.retrains
    ]
    got, want = recovered.summary(), reference.summary()
    assert got.n_events == want.n_events
    assert got.n_fatal == want.n_fatal
    assert got.precision == want.precision
    assert got.recall == want.recall


class TestKillAtAnyPoint:
    @pytest.fixture(scope="class")
    def config(self):
        return base_config()

    @pytest.fixture(scope="class")
    def reference(self, config, catalog):
        return run_uninterrupted(config, catalog)

    @pytest.mark.parametrize("kill", KILL_INDICES)
    def test_clean_kill_recovers_identically(
        self, config, catalog, reference, tmp_path, kill
    ):
        """Die (unflushed, uncheckpointed) just before event ``kill``;
        recovery + the rest of the stream matches the reference run
        warning for warning."""
        run_until_killed(config, catalog, tmp_path, kill)
        recovered, recovered_at = recover_and_finish(config, catalog, tmp_path)
        assert recovered_at == kill  # journal replay, not checkpoint rewind
        assert_equivalent(recovered, reference)

    @pytest.mark.parametrize("kill", [KILL_INDICES[0], first_index_at(4) + 1])
    def test_torn_final_record_recovers_identically(
        self, config, catalog, reference, tmp_path, kill
    ):
        """Die *mid-append*: the torn record is truncated on recovery
        and its event — never durable — is re-delivered by the source,
        so the final warning stream is still identical."""
        run_until_killed(config, catalog, tmp_path, kill, torn=True)
        recovered, recovered_at = recover_and_finish(config, catalog, tmp_path)
        assert recovered.journal is not None
        assert recovered.journal.n_torn_truncated == 1
        assert recovered_at == kill
        assert_equivalent(recovered, reference)

    def test_kill_before_any_checkpoint_replays_whole_journal(
        self, config, catalog, reference, tmp_path
    ):
        kill = 80
        assert kill < CKPT_EVERY
        run_until_killed(config, catalog, tmp_path, kill)
        assert not (tmp_path / "s.ckpt").exists()
        recovered, recovered_at = recover_and_finish(config, catalog, tmp_path)
        assert recovered_at == kill
        assert_equivalent(recovered, reference)


class TestKillMidDegraded:
    """Kills while a retraining is owed (degraded mode) must preserve
    the backoff clock, attempt counter and failure records through
    checkpoint+journal recovery."""

    @pytest.fixture(scope="class")
    def config(self):
        return base_config(
            on_retrain_error="degrade",
            retrain_backoff_base=3600.0,
            retrain_backoff_cap=14_400.0,
        )

    @staticmethod
    def crash_plan():
        return FaultPlan(
            learner_crashes=[LearnerCrash(week=4, attempts=10**9)]
        )

    @pytest.fixture(scope="class")
    def reference(self, config, catalog):
        session = run_uninterrupted(config, catalog, plan=self.crash_plan())
        assert session.retrain_failures  # degraded stretch happened
        return session

    @pytest.mark.parametrize("offset", [1, 40])
    def test_kill_inside_degraded_stretch(
        self, config, catalog, reference, tmp_path, offset
    ):
        kill = first_index_at(4) + offset
        run_until_killed(
            config, catalog, tmp_path, kill, plan=self.crash_plan()
        )
        recovered, _ = recover_and_finish(
            config, catalog, tmp_path, plan=self.crash_plan()
        )
        assert recovered.warnings == reference.warnings
        assert [
            (f.week, f.error_type, f.attempt, f.time)
            for f in recovered.retrain_failures
        ] == [
            (f.week, f.error_type, f.attempt, f.time)
            for f in reference.retrain_failures
        ]
        assert [r.week for r in recovered.retrains] == [
            r.week for r in reference.retrains
        ]


class TestKillAcrossDriftRetrainBoundary:
    """The tentpole's durability promise: with the *adaptive* trigger,
    kill-at-any-event-index recovery is still warning-for-warning
    identical — including kills straddling a retraining that only
    happened because the drift detectors fired.  The detector windows,
    EWMA state and policy clock all rebuild from checkpoint v3 plus
    journal replay; a divergence would show up as a shifted or missing
    drift trigger in the recovered run."""

    #: ten weeks with the failure pattern replaced wholesale at week 5
    ADAPT_EVENTS = list(shift_log(weeks=10, shift_week=5))

    @pytest.fixture(scope="class")
    def config(self):
        return base_config(
            retrain_trigger="adaptive",
            adapt_cooldown_weeks=1,
            # beyond the trace: any non-initial trigger is drift-caused
            adapt_max_interval_weeks=20,
        )

    @pytest.fixture(scope="class")
    def reference(self, config, catalog):
        session = run_uninterrupted(
            config, catalog, events=self.ADAPT_EVENTS
        )
        triggers = session.drift_status()["triggers"]
        # the run this suite kills *does* cross a drift-triggered
        # retraining: initial training plus exactly one detector trigger
        assert [t["cause"] for t in triggers][0] == "initial"
        assert len(triggers) == 2
        assert triggers[1]["cause"] not in ("initial", "max_interval")
        assert [r.week for r in session.retrains] == [
            2,
            triggers[1]["week"],
        ]
        return session

    def drift_kill_indices(self, reference):
        """Kill points bracketing the drift-triggered retrain boundary,
        plus one mid-accumulation (detectors digesting the new regime)
        and one pre-first-checkpoint."""
        drift_week = reference.retrains[-1].week
        at = first_index_at(drift_week, self.ADAPT_EVENTS)
        mid = first_index_at(drift_week - 1, self.ADAPT_EVENTS) + 3
        return sorted({80, mid, at - 1, at, at + 2})

    def test_drift_boundary_kills_recover_identically(
        self, config, catalog, reference, tmp_path
    ):
        for kill in self.drift_kill_indices(reference):
            workdir = tmp_path / f"kill-{kill}"
            workdir.mkdir()
            run_until_killed(
                config,
                catalog,
                workdir,
                kill,
                events=self.ADAPT_EVENTS,
            )
            recovered, recovered_at = recover_and_finish(
                config, catalog, workdir, events=self.ADAPT_EVENTS
            )
            assert recovered_at == kill
            assert_equivalent(recovered, reference)
            # the drift bookkeeping is bit-identical too: same scores,
            # same trigger log, same evaluation/skip/defer counters
            assert recovered.drift_status() == reference.drift_status()

    def test_torn_record_at_drift_boundary(
        self, config, catalog, reference, tmp_path
    ):
        """Die mid-append on the boundary-crossing event itself."""
        kill = first_index_at(
            reference.retrains[-1].week, self.ADAPT_EVENTS
        )
        run_until_killed(
            config,
            catalog,
            tmp_path,
            kill,
            torn=True,
            events=self.ADAPT_EVENTS,
        )
        recovered, recovered_at = recover_and_finish(
            config, catalog, tmp_path, events=self.ADAPT_EVENTS
        )
        assert recovered.journal.n_torn_truncated == 1
        assert recovered_at == kill
        assert_equivalent(recovered, reference)
        assert recovered.drift_status() == reference.drift_status()


class TestBatchEquivalence:
    def test_crash_and_recover_matches_batch_at_boundary_straddle(
        self, catalog, tmp_path
    ):
        """The strongest form of the contract: a crash straddling a
        retraining boundary, recovered via checkpoint+journal, produces
        the warning stream of a *batch* framework run over the log."""
        config = base_config()
        batch = DynamicMetaLearningFramework(config, catalog=catalog).run(
            pattern_log(8)
        )
        kill = first_index_at(4)  # the boundary-crossing event itself
        run_until_killed(config, catalog, tmp_path, kill)
        recovered, _ = recover_and_finish(config, catalog, tmp_path)
        assert recovered.warnings == batch.warnings
        assert [r.week for r in recovered.retrains] == [
            r.week for r in batch.retrains
        ]
