"""Failure-injection and degenerate-input robustness tests.

A production monitor must survive pathological inputs: quiet systems with
no failures, training windows with no events at all, garbage in the log
stream, and learners that blow up.  These tests pin the intended behaviour
for each.
"""

import io

import pytest

from repro.core.framework import DynamicMetaLearningFramework, FrameworkConfig
from repro.core.meta import MetaLearner
from repro.core.online import OnlinePredictionSession
from repro.core.predictor import Predictor
from repro.core.reviser import Reviser
from repro.core.windows import static_initial
from repro.learners.base import BaseLearner
from repro.raslog.events import Severity
from repro.raslog.parser import ParseReport, load_log
from repro.raslog.store import EventLog
from repro.utils.timeutil import WEEK_SECONDS
from tests.conftest import make_event, make_log


def quiet_log(weeks=30):
    """Background chatter, zero failures."""
    specs = [
        (w * WEEK_SECONDS + k * 30_000.0, "KERNEL-N-000", {"severity": Severity.INFO})
        for w in range(weeks)
        for k in range(10)
    ]
    return make_log(specs)


class TestNoFailures:
    def test_learners_return_empty(self, catalog):
        meta = MetaLearner(catalog=catalog)
        output = meta.train(quiet_log(8), 300.0)
        assert output.n_rules == 0

    def test_framework_run_completes(self, catalog):
        config = FrameworkConfig(initial_train_weeks=10, retrain_weeks=8)
        result = DynamicMetaLearningFramework(config, catalog=catalog).run(
            quiet_log(20)
        )
        assert result.warnings == []
        assert result.overall.precision == 0.0
        assert result.overall.recall == 0.0
        assert all(e.n_candidates == 0 for e in result.retrains)

    def test_online_session_completes(self, catalog):
        config = FrameworkConfig(initial_train_weeks=10, retrain_weeks=8)
        session = OnlinePredictionSession(config, catalog=catalog)
        for event in quiet_log(20):
            assert session.ingest(event) == []
        assert session.summary().n_fatal == 0


class TestEmptyTrainingWindows:
    def test_framework_with_empty_weeks(self, catalog):
        """Events only in the test period: training sees nothing."""
        specs = [
            (25 * WEEK_SECONDS + k * 1000.0, "KERNEL-F-000", {"severity": Severity.FATAL})
            for k in range(50)
        ]
        log = make_log(specs + [(29 * WEEK_SECONDS - 1.0, "KERNEL-N-000", {})])
        config = FrameworkConfig(initial_train_weeks=20, retrain_weeks=4)
        result = DynamicMetaLearningFramework(config, catalog=catalog).run(log)
        # the first retrain trains on emptiness, later ones pick up data
        assert result.retrains[0].n_candidates == 0
        assert result.end_week >= 29

    def test_reviser_with_empty_log(self, catalog):
        result = Reviser(catalog=catalog).revise([], EventLog(), 300.0)
        assert result.kept == []

    def test_predictor_empty_rules_and_log(self, catalog):
        predictor = Predictor([], 300.0, catalog)
        assert predictor.replay(EventLog()) == []


class _ExplodingLearner(BaseLearner):
    name = "exploding"

    def train(self, log, window):
        raise RuntimeError("deliberate failure")


class TestLearnerFailure:
    def test_meta_propagates_learner_errors(self, catalog, mid_trace):
        """A crashing learner must surface, not be silently swallowed."""
        meta = MetaLearner([_ExplodingLearner(catalog)], catalog=catalog)
        with pytest.raises(RuntimeError, match="deliberate failure"):
            meta.train(mid_trace.clean.slice_weeks(0, 4), 300.0)


class TestGarbageInTheStream:
    def test_parser_survives_binary_noise(self):
        noise = "\x00\x01\x02 garbage\nnot a log line\n- notanepoch x y z\n"
        report = ParseReport()
        log = load_log(io.StringIO(noise), report=report)
        assert len(log) == 0
        assert report.skipped >= 2

    def test_framework_ignores_uncatalogued_codes(self, catalog):
        """Unknown entry_data values flow through as non-fatal chatter."""
        specs = []
        for i in range(200):
            t = i * 10_000.0
            specs.append((t, "weird-unknown-code", {}))
            if i % 4 == 0:
                specs.append((t + 50.0, "KERNEL-F-000", {"severity": Severity.FATAL}))
        log = make_log(specs)
        config = FrameworkConfig(
            initial_train_weeks=1, retrain_weeks=2, policy=static_initial(1)
        )
        result = DynamicMetaLearningFramework(config, catalog=catalog).run(log)
        assert result.end_week == log.n_weeks  # completed


class TestDegenerateConfigs:
    def test_single_event_log(self, catalog):
        log = make_log([(5.0, "KERNEL-N-000", {})])
        config = FrameworkConfig(initial_train_weeks=1)
        with pytest.raises(ValueError, match="nothing to evaluate"):
            DynamicMetaLearningFramework(config, catalog=catalog).run(log)

    def test_window_larger_than_trace(self, catalog, mid_trace):
        """A 2-day prediction window on a short trace still works."""
        config = FrameworkConfig(
            prediction_window=2 * 86400.0,
            initial_train_weeks=20,
        )
        result = DynamicMetaLearningFramework(
            config, catalog=mid_trace.catalog
        ).run(mid_trace.clean, end_week=24)
        assert result.end_week == 24

    def test_retrain_every_week(self, catalog, mid_trace):
        config = FrameworkConfig(initial_train_weeks=20, retrain_weeks=1)
        result = DynamicMetaLearningFramework(
            config, catalog=mid_trace.catalog
        ).run(mid_trace.clean, end_week=26)
        assert len(result.retrains) == 6


class TestEventEdgeCases:
    def test_simultaneous_events(self, catalog):
        """Events with identical timestamps are processed in order."""
        predictor = Predictor([], 300.0, catalog)
        e1 = make_event(10.0, "KERNEL-N-000")
        e2 = make_event(10.0, "KERNEL-N-001")
        predictor.observe(e1)
        predictor.observe(e2)  # must not raise
        assert len(predictor.state.monitoring) == 2

    def test_event_exactly_at_week_boundary(self, catalog):
        log = make_log(
            [(WEEK_SECONDS, "KERNEL-N-000", {}), (WEEK_SECONDS - 0.001, "KERNEL-N-001", {})]
        )
        assert len(log.week(0)) == 1
        assert len(log.week(1)) == 1
