"""BENCH_* artifact format stability and the regression gate.

The committed BENCH files are consumed by CI (the gate) and by future
sessions reading the perf trajectory, so their shape is a contract:
these tests pin the schema key-set and prove the gate actually trips on
an injected slowdown — and only on one it should trip on.
"""

from __future__ import annotations

import importlib.util
import json
import sys
from pathlib import Path

import pytest

from repro.perf.harness import (
    BENCH_SCHEMA_VERSION,
    Metric,
    bench_path,
    load_trajectory,
    machine_fingerprint,
    params_digest,
    record_run,
)

REPO_ROOT = Path(__file__).resolve().parent.parent.parent


def load_gate():
    spec = importlib.util.spec_from_file_location(
        "check_perf_regression",
        REPO_ROOT / "scripts" / "check_perf_regression.py",
    )
    module = importlib.util.module_from_spec(spec)
    # dataclasses resolves string annotations through sys.modules.
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


METRICS = {
    "events_per_sec": Metric(1000.0, "events/s", higher_is_better=True),
    "p99_us": Metric(50.0, "us"),
    "speedup": Metric(1.5, "ratio", higher_is_better=True),
    "n_events": Metric(500.0, "count"),
}
PARAMS = {"suite": "demo", "smoke": True, "scale": 0.5}


def write_runs(tmp_path, runs, topic="demo"):
    """Hand-author a trajectory file for gate tests."""
    path = bench_path(topic, tmp_path)
    path.write_text(
        json.dumps(
            {"schema": BENCH_SCHEMA_VERSION, "topic": topic, "runs": runs}
        )
    )
    return path


def make_run(metrics, params=PARAMS, machine=None):
    return {
        "timestamp": "2026-08-08T00:00:00+00:00",
        "machine": machine or machine_fingerprint(),
        "params": dict(params),
        "params_digest": params_digest(params),
        "metrics": {k: m.as_dict() for k, m in metrics.items()},
    }


class TestArtifactSchema:
    def test_record_run_creates_and_appends(self, tmp_path):
        path = record_run("demo", METRICS, PARAMS, directory=tmp_path)
        assert path == tmp_path / "BENCH_demo.json"
        record_run("demo", METRICS, PARAMS, directory=tmp_path)
        data = load_trajectory(path)
        assert data["schema"] == BENCH_SCHEMA_VERSION
        assert data["topic"] == "demo"
        assert len(data["runs"]) == 2

    def test_run_key_set_is_stable(self, tmp_path):
        """The per-run schema the gate and CI depend on."""
        path = record_run("demo", METRICS, PARAMS, directory=tmp_path)
        run = load_trajectory(path)["runs"][0]
        assert set(run) == {
            "timestamp",
            "machine",
            "params",
            "params_digest",
            "metrics",
        }
        assert set(run["machine"]) >= {"fingerprint", "python", "cpu_count"}
        for metric in run["metrics"].values():
            assert set(metric) == {"value", "unit", "higher_is_better"}

    def test_topic_mismatch_rejected(self, tmp_path):
        record_run("demo", METRICS, PARAMS, directory=tmp_path)
        (tmp_path / "BENCH_other.json").write_text(
            (tmp_path / "BENCH_demo.json").read_text()
        )
        with pytest.raises(ValueError, match="topic"):
            record_run("other", METRICS, PARAMS, directory=tmp_path)

    def test_schema_version_enforced(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        path.write_text(json.dumps({"schema": 99, "topic": "x", "runs": []}))
        with pytest.raises(ValueError, match="schema"):
            load_trajectory(path)

    def test_bad_topic_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="topic"):
            bench_path("../escape", tmp_path)

    def test_params_digest_distinguishes_smoke(self):
        full = dict(PARAMS, smoke=False)
        assert params_digest(PARAMS) != params_digest(full)

    def test_metric_round_trip(self):
        metric = Metric(12.5, "events/s", higher_is_better=True)
        assert Metric.from_dict(metric.as_dict()) == metric


class TestRegressionGate:
    def test_clean_pass(self, tmp_path, capsys):
        gate = load_gate()
        path = write_runs(
            tmp_path, [make_run(METRICS), make_run(METRICS)]
        )
        assert gate.main([str(path)]) == 0

    def test_injected_slowdown_trips(self, tmp_path):
        gate = load_gate()
        slowed = dict(METRICS, events_per_sec=Metric(600.0, "events/s", True))
        path = write_runs(tmp_path, [make_run(METRICS), make_run(slowed)])
        assert gate.main([str(path)]) == 1

    def test_latency_regression_trips(self, tmp_path):
        gate = load_gate()
        slowed = dict(METRICS, p99_us=Metric(90.0, "us"))
        path = write_runs(tmp_path, [make_run(METRICS), make_run(slowed)])
        assert gate.main([str(path)]) == 1

    def test_within_tolerance_passes(self, tmp_path):
        gate = load_gate()
        wobbly = dict(METRICS, events_per_sec=Metric(900.0, "events/s", True))
        path = write_runs(tmp_path, [make_run(METRICS), make_run(wobbly)])
        assert gate.main([str(path)]) == 0

    def test_improvement_passes(self, tmp_path):
        gate = load_gate()
        faster = dict(METRICS, events_per_sec=Metric(5000.0, "events/s", True))
        path = write_runs(tmp_path, [make_run(METRICS), make_run(faster)])
        assert gate.main([str(path)]) == 0

    def test_cross_machine_gates_only_ratios(self, tmp_path):
        gate = load_gate()
        other_machine = dict(machine_fingerprint(), fingerprint="elsewhere")
        # Absolute throughput halves but the machine changed: not gated.
        slowed = dict(METRICS, events_per_sec=Metric(500.0, "events/s", True))
        path = write_runs(
            tmp_path,
            [make_run(METRICS), make_run(slowed, machine=other_machine)],
        )
        assert gate.main([str(path)]) == 0
        # A regressed *ratio* metric is gated even cross-machine.
        worse_ratio = dict(METRICS, speedup=Metric(1.0, "ratio", True))
        path = write_runs(
            tmp_path,
            [make_run(METRICS), make_run(worse_ratio, machine=other_machine)],
        )
        assert gate.main([str(path)]) == 1

    def test_counts_never_gated(self, tmp_path):
        gate = load_gate()
        shifted = dict(METRICS, n_events=Metric(900.0, "count"))
        path = write_runs(tmp_path, [make_run(METRICS), make_run(shifted)])
        assert gate.main([str(path)]) == 0

    def test_baseline_matched_by_params_digest(self, tmp_path):
        gate = load_gate()
        full_params = dict(PARAMS, smoke=False)
        # A slow full run between two smoke runs must not become the
        # smoke candidate's baseline.
        slow_full = {
            k: Metric(m.value * 0.1, m.unit, m.higher_is_better)
            for k, m in METRICS.items()
        }
        runs = [
            make_run(METRICS),
            make_run(slow_full, params=full_params),
            make_run(METRICS),
        ]
        assert gate.main([str(write_runs(tmp_path, runs))]) == 0

    def test_bootstrap_without_baseline_passes(self, tmp_path):
        gate = load_gate()
        path = write_runs(tmp_path, [make_run(METRICS)])
        assert gate.main([str(path)]) == 0

    def test_unreadable_file_errors(self, tmp_path):
        gate = load_gate()
        path = tmp_path / "BENCH_broken.json"
        path.write_text("{not json")
        assert gate.main([str(path)]) == 2
