"""Smoke coverage for the bench suites and the `repro bench` verb.

Only the cheap suites run here (journal + preprocess — both sub-second
in smoke mode); the predictor/service suites share the same plumbing and
are exercised by CI's bench-smoke job, not the unit tier.
"""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.perf import SUITES, load_trajectory, run_suite


class TestRunSuite:
    def test_journal_append_records_trajectory(self, tmp_path):
        path, metrics = run_suite(
            "journal_append", smoke=True, directory=tmp_path
        )
        assert path == tmp_path / "BENCH_journal_append.json"
        data = load_trajectory(path)
        (run,) = data["runs"]
        assert run["params"]["smoke"] is True
        assert set(run["metrics"]) >= {
            "appends_per_sec_single",
            "appends_per_sec_batched",
            "batch_speedup",
            "recovery_replay_s",
        }
        # Group commit must actually beat per-record fsync.
        assert metrics["batch_speedup"].value > 1.0

    def test_preprocess_filter_asserts_equivalence(self, tmp_path):
        path, metrics = run_suite(
            "preprocess_filter", smoke=True, directory=tmp_path
        )
        data = load_trajectory(path)
        assert data["topic"] == "preprocess_filter"
        assert metrics["n_rows_out"].value < metrics["n_rows_in"].value

    def test_second_run_appends(self, tmp_path):
        run_suite("journal_append", smoke=True, directory=tmp_path)
        path, _ = run_suite("journal_append", smoke=True, directory=tmp_path)
        assert len(load_trajectory(path)["runs"]) == 2

    def test_unknown_suite(self, tmp_path):
        with pytest.raises(ValueError, match="unknown bench suite"):
            run_suite("nope", directory=tmp_path)

    def test_scenario_rejected_outside_drift_suite(self, tmp_path):
        with pytest.raises(ValueError, match="does not take a --scenario"):
            run_suite(
                "journal_append",
                smoke=True,
                directory=tmp_path,
                scenario="reconfiguration",
            )


class TestBenchVerb:
    def test_list(self, capsys):
        assert main(["bench", "--list"]) == 0
        out = capsys.readouterr().out.split()
        assert sorted(SUITES) == out

    def test_runs_selected_suite(self, tmp_path, capsys):
        rc = main(
            [
                "bench",
                "--suite",
                "preprocess_filter",
                "--smoke",
                "--out-dir",
                str(tmp_path),
            ]
        )
        assert rc == 0
        assert (tmp_path / "BENCH_preprocess_filter.json").exists()
        assert "filter_speedup" in capsys.readouterr().out

    def test_unknown_suite_exits_2(self, tmp_path):
        rc = main(
            ["bench", "--suite", "nope", "--out-dir", str(tmp_path)]
        )
        assert rc == 2

    def test_scenario_with_other_suite_exits_2(self, tmp_path, capsys):
        rc = main(
            [
                "bench",
                "--suite",
                "journal_append",
                "--scenario",
                "reconfiguration",
                "--out-dir",
                str(tmp_path),
            ]
        )
        assert rc == 2
        assert "only applies to the drift_adapt" in capsys.readouterr().err

    def test_unknown_scenario_exits_2(self, tmp_path, capsys):
        rc = main(
            ["bench", "--scenario", "nope", "--out-dir", str(tmp_path)]
        )
        assert rc == 2
        err = capsys.readouterr().err
        assert "unknown scenario" in err and "reconfiguration" in err
