#!/usr/bin/env python
"""Gate BENCH_* trajectories: fail on perf regressions vs baseline.

For each ``BENCH_<topic>.json`` given, the newest run is the candidate
and its baseline is the most recent *earlier* run with the same
``params_digest`` (so smoke runs are only compared against smoke runs,
full runs against full runs).  A metric regresses when it is worse than
the baseline by more than ``--threshold`` (fraction, default 0.20);
"worse" follows the metric's recorded ``higher_is_better``.

Cross-machine honesty: when the candidate and baseline carry different
machine fingerprints, absolute numbers (events/s, us, ...) are not
comparable — only dimensionless ``ratio`` metrics (speedups, scaling
factors) are gated; the rest are reported informationally.  ``count``
metrics are never gated (they are workload invariants, not performance).

Exit status: 0 clean, 1 regression found, 2 usage/file error.

Typical CI usage, after ``repro bench --smoke`` appended fresh runs to
the committed trajectories::

    python scripts/check_perf_regression.py BENCH_*.json
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass
from pathlib import Path

sys.path.insert(
    0, str(Path(__file__).resolve().parent.parent / "src")
)

from repro.perf.harness import RATIO_UNIT, load_trajectory  # noqa: E402

#: Units that are never gated: deterministic workload invariants.
#: ``count`` metrics record workload sizes; ``weeks`` metrics record
#: scheduling outcomes on a seeded trace (e.g. the drift suite's
#: ``trigger_delay_weeks``), which the suite itself asserts — the gate
#: only watches the dimensionless ratios derived from them.
UNGATED_UNITS = frozenset({"count", "weeks"})


@dataclass(frozen=True)
class Finding:
    """One metric comparison between candidate and baseline runs."""

    topic: str
    metric: str
    baseline: float
    candidate: float
    unit: str
    #: fractional change in the "worse" direction (negative = improved)
    regression: float
    gated: bool

    @property
    def regressed(self) -> bool:
        return self.gated and self.regression > 0

    def render(self, threshold: float) -> str:
        direction = "-" if self.regression > 0 else "+"
        status = "ok"
        if not self.gated:
            status = "info"
        elif self.regression > threshold:
            status = "REGRESSION"
        return (
            f"  {self.metric}: {self.baseline:,.2f} -> "
            f"{self.candidate:,.2f} {self.unit} "
            f"({direction}{abs(self.regression) * 100:.1f}%) [{status}]"
        )


def find_baseline(runs: list[dict], candidate: dict) -> "dict | None":
    """Most recent run before ``candidate`` measuring the same workload."""
    digest = candidate.get("params_digest")
    for run in reversed(runs):
        if run is candidate:
            continue
        if run.get("params_digest") == digest:
            return run
    return None


def compare_runs(
    topic: str, baseline: dict, candidate: dict
) -> list[Finding]:
    """Metric-by-metric comparison; gating per the cross-machine rules."""
    same_machine = baseline.get("machine", {}).get("fingerprint") == candidate.get(
        "machine", {}
    ).get("fingerprint")
    findings: list[Finding] = []
    base_metrics = baseline.get("metrics", {})
    for name, cand in sorted(candidate.get("metrics", {}).items()):
        base = base_metrics.get(name)
        if base is None:
            continue
        unit = cand.get("unit", "")
        gated = unit not in UNGATED_UNITS and (
            same_machine or unit == RATIO_UNIT
        )
        base_value = float(base["value"])
        cand_value = float(cand["value"])
        if base_value == 0.0:
            regression = 0.0
        elif cand.get("higher_is_better", False):
            regression = (base_value - cand_value) / abs(base_value)
        else:
            regression = (cand_value - base_value) / abs(base_value)
        findings.append(
            Finding(
                topic=topic,
                metric=name,
                baseline=base_value,
                candidate=cand_value,
                unit=unit,
                regression=regression,
                gated=gated,
            )
        )
    return findings


def check_file(path: str, threshold: float) -> tuple[list[Finding], str]:
    """Returns (findings, note); findings empty when nothing comparable."""
    data = load_trajectory(path)
    runs = data["runs"]
    if not runs:
        return [], f"{path}: no runs recorded"
    candidate = runs[-1]
    baseline = find_baseline(runs, candidate)
    if baseline is None:
        return [], (
            f"{path}: no earlier run with params_digest "
            f"{candidate.get('params_digest')} — nothing to gate "
            f"(baseline bootstrap)"
        )
    return compare_runs(data["topic"], baseline, candidate), ""


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("files", nargs="+", metavar="BENCH_topic.json")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.20,
        help="max tolerated fractional regression (default: 0.20)",
    )
    args = parser.parse_args(argv)
    if not 0 < args.threshold < 10:
        parser.error(f"implausible threshold {args.threshold}")

    failed = False
    for path in args.files:
        try:
            findings, note = check_file(path, args.threshold)
        except (OSError, ValueError, KeyError, TypeError, AttributeError) as exc:
            # One line + exit 2 for any malformed trajectory — a missing
            # file, bad JSON, a non-object top level, or run/metric
            # entries of the wrong shape.  CI greps this, not a traceback.
            print(f"{path}: unreadable trajectory: {exc}", file=sys.stderr)
            return 2
        if note:
            print(note)
            continue
        print(f"{path}:")
        for finding in findings:
            print(finding.render(args.threshold))
            if finding.gated and finding.regression > args.threshold:
                failed = True

    if failed:
        print(
            f"\nFAIL: regression beyond {args.threshold * 100:.0f}% "
            f"tolerance (refresh the committed baseline only with "
            f"an explanation in the PR)",
            file=sys.stderr,
        )
        return 1
    print("\nOK: no gated metric regressed beyond tolerance")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
