"""One-shot substrate health report for the bench seed.

Prints every quantity the figure benches assert on, so generator tuning
can be evaluated with a single run.
"""

import sys

from repro.core import (
    DynamicMetaLearningFramework,
    FrameworkConfig,
    dynamic_months,
    dynamic_whole,
    static_initial,
)
from repro.evaluation import mean_accuracy, rolling_metrics
from repro.experiments import figure8, q1_meta, q3_window
from repro.experiments.config import clear_cache, make_log

SEED = int(sys.argv[1]) if len(sys.argv) > 1 else 2008


def f1(p, r):
    return 2 * p * r / (p + r) if (p + r) else 0.0


def main() -> None:
    clear_cache()
    syn = make_log("SDSC", seed=SEED)
    log, cat = syn.clean, syn.catalog
    print(f"== seed {SEED}: {len(log)} events, {syn.n_fatal} fatal ==")

    # fig7: per-method static runs
    print("-- fig7 (static, per method) --")
    _, results = q1_meta.run("SDSC", seed=SEED)
    rec, prec = {}, {}
    for m, r in results.items():
        prec[m], rec[m] = mean_accuracy(r.weekly)
        print(f"  {m:12s} p={prec[m]:.2f} r={rec[m]:.2f}")
    sm = rolling_metrics(results["meta"].weekly, 6)
    early = sum(w.recall for w in sm[:10]) / 10
    late = sum(w.recall for w in sm[-10:]) / 10
    print(f"  meta static recall early10={early:.2f} late10={late:.2f}")

    # fig8
    _, venn = figure8.run("SDSC", seed=SEED, span=(44, 48))
    print("-- fig8 --")
    print("  cov:", {n: round(venn.coverage_fraction(n), 3) for n in venn.names},
          "multi:", venn.multi_captured, "uncaptured:", venn.uncaptured)

    # fig9/10/12: policies and churn
    print("-- fig9/10/12 --")
    runs = {}
    for name, pol in [
        ("dyn6", dynamic_months(6)),
        ("static", static_initial(6)),
        ("whole", dynamic_whole()),
    ]:
        runs[name] = DynamicMetaLearningFramework(
            FrameworkConfig(policy=pol), catalog=cat
        ).run(log)
    n = len(runs["dyn6"].weekly)
    for name, res in runs.items():
        p, r = mean_accuracy(res.weekly)
        lp, lr = mean_accuracy(res.weekly[n // 2 :])
        print(f"  {name:7s} p={p:.2f} r={r:.2f} | late p={lp:.2f} r={lr:.2f} f1={f1(lp, lr):.2f}")
    smo = rolling_metrics(runs["dyn6"].weekly, 4)

    def band(w0, w1, metric):
        pts = [getattr(m, metric) for m in smo if w0 <= m.week < w1]
        return sum(pts) / len(pts)

    for metric in ("precision", "recall"):
        print(
            f"  dyn6 {metric}: before(46-60)={band(46, 60, metric):.2f} "
            f"during(62-72)={band(62, 72, metric):.2f} after(84-110)={band(84, 110, metric):.2f}"
        )
    records = runs["dyn6"].churn.records
    print("  max active rules:", max(r.total_active for r in records))
    churn = [r.added + r.removed_by_meta for r in records[2:]]
    spike = max(
        r.added + r.removed_by_meta for r in records if 62 <= r.week <= 74
    )
    print("  median churn:", sorted(churn)[len(churn) // 2], "reconfig spike:", spike)

    # fig13
    t13, _ = q3_window.run("SDSC", seed=SEED, windows=(300.0, 1800.0, 7200.0))
    print("-- fig13 --")
    print("  recall:", t13.column("recall"), "precision:", t13.column("precision"))


if __name__ == "__main__":
    main()
