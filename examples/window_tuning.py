"""Adaptive prediction-window tuning (the paper's Section 7 future work).

The prediction window trades recall against precision and cost
(Figure 13).  Instead of fixing `Wp`, this example lets the
:class:`~repro.core.adaptive.AdaptiveWindowFramework` re-tune it at every
retraining: candidate windows are scored on a validation split of the
training data, and the smallest near-best window wins.

Run with::

    python examples/window_tuning.py
"""

from repro import (
    FrameworkConfig,
    GeneratorConfig,
    SDSC_PROFILE,
    generate_log,
)
from repro.core import DynamicMetaLearningFramework
from repro.core.adaptive import AdaptiveWindowFramework, AdaptiveWindowTuner
from repro.evaluation import compare_runs


def main() -> None:
    trace = generate_log(
        SDSC_PROFILE, GeneratorConfig(weeks=72, seed=2008, duplicates=False)
    )
    catalog = trace.catalog

    runs = {}
    for label, window in (("fixed 5min", 300.0), ("fixed 2hr", 7200.0)):
        config = FrameworkConfig(prediction_window=window)
        runs[label] = DynamicMetaLearningFramework(
            config, catalog=catalog
        ).run(trace.clean)

    adaptive = AdaptiveWindowFramework(
        FrameworkConfig(),
        catalog=catalog,
        tuner=AdaptiveWindowTuner(candidates=(300.0, 1800.0, 7200.0)),
    )
    runs["adaptive"] = adaptive.run(trace.clean)

    print(compare_runs(runs, title="Fixed vs adaptive prediction windows").render())

    print("\ntuning decisions per retraining:")
    for decision in adaptive.decisions:
        scores = ", ".join(
            f"{w / 60:.0f}min:f1={f1:.2f}"
            for w, (_, _, f1) in sorted(decision.scores.items())
        )
        print(
            f"  week {decision.week:3d}: chose {decision.chosen / 60:.0f}min"
            f"  ({scores})"
        )


if __name__ == "__main__":
    main()
