"""SDSC case study: surviving a major system reconfiguration.

The SDSC system was reconfigured between weeks 60 and 64, rewriting its
failure patterns; the paper shows accuracy dipping more than 10 % and
recovering after a few retrainings, with an outsized spike in rule churn.
This example reproduces that episode and prints the rule-churn series of
Figure 12 around it.

Run with::

    python examples/sdsc_reconfiguration.py
"""

from repro import (
    DynamicMetaLearningFramework,
    FrameworkConfig,
    GeneratorConfig,
    SDSC_PROFILE,
    generate_log,
)
from repro.evaluation import rolling_metrics


def main() -> None:
    trace = generate_log(
        SDSC_PROFILE, GeneratorConfig(seed=2008, duplicates=False)
    )
    reconfig = next(
        a for a in SDSC_PROFILE.anomalies if a.kind == "reconfig"
    )
    print(
        f"SDSC trace: {len(trace.clean)} events, {trace.n_fatal} failures; "
        f"reconfiguration at weeks {reconfig.start_week}-{reconfig.end_week}"
    )

    # More frequent retraining (WR=2) recovers faster after the change.
    results = {}
    for wr in (2, 8):
        config = FrameworkConfig(retrain_weeks=wr)
        results[wr] = DynamicMetaLearningFramework(
            config, catalog=trace.catalog
        ).run(trace.clean)

    print("\nweekly precision around the reconfiguration (4-week smoothed):")
    print("week   WR=2   WR=8")
    series = {wr: rolling_metrics(r.weekly, 4) for wr, r in results.items()}
    for a, b in zip(series[2], series[8]):
        if 50 <= a.week <= 96 and a.week % 4 == 0:
            marker = "  <- reconfiguration" if 60 <= a.week < 64 else ""
            print(f"{a.week:4d}  {a.precision:5.2f}  {b.precision:5.2f}{marker}")

    print("\nrule churn per retraining (WR=2), Figure 12 style:")
    print("week  unchanged  added  removed(meta)  removed(reviser)")
    for rec in results[2].churn.records:
        if 52 <= rec.week <= 92:
            print(
                f"{rec.week:4d}  {rec.unchanged:9d}  {rec.added:5d}"
                f"  {rec.removed_by_meta:13d}  {rec.removed_by_reviser:16d}"
            )


if __name__ == "__main__":
    main()
