"""Online deployment shape: a streaming session reacting to warnings.

Shows how a fault-tolerance layer consumes the framework in production:
an :class:`~repro.core.online.OnlinePredictionSession` ingests RAS events
as they arrive, retrains itself on schedule, and hands back failure
warnings that drive actions such as preemptive checkpoints.  The learned
rule set is persisted to JSON so a restarted monitor (or a separate
predictor process) can pick it up.

Run with::

    python examples/online_monitor.py
"""

from repro import FrameworkConfig, GeneratorConfig, SDSC_PROFILE, generate_log
from repro.core import dump_repository, load_repository
from repro.core.online import OnlinePredictionSession
from repro.learners.rules import ANY_FAILURE
from repro.utils.timeutil import WEEK_SECONDS


class CheckpointScheduler:
    """A toy reactive layer: checkpoint on warning, with a cooldown."""

    def __init__(self, cooldown: float = 1800.0) -> None:
        self.cooldown = cooldown
        self.checkpoints: list[float] = []
        self.shown = 0

    def on_warning(self, warning) -> None:
        if self.checkpoints and warning.time - self.checkpoints[-1] < self.cooldown:
            return  # a recent checkpoint already covers this horizon
        self.checkpoints.append(warning.time)
        if self.shown < 12:
            self.shown += 1
            target = (
                "any component"
                if warning.predicted == ANY_FAILURE
                else warning.predicted
            )
            print(
                f"  week {warning.time / WEEK_SECONDS:5.1f}  "
                f"[{warning.learner:12s}] failure of {target} expected "
                f"within {warning.window / 60:.0f} min -> "
                f"checkpoint #{len(self.checkpoints)}"
            )


def main() -> None:
    trace = generate_log(
        SDSC_PROFILE, GeneratorConfig(weeks=32, seed=17, duplicates=False)
    )
    config = FrameworkConfig(initial_train_weeks=26, retrain_weeks=4)
    session = OnlinePredictionSession(config, catalog=trace.catalog)
    scheduler = CheckpointScheduler()

    print(f"streaming {len(trace.clean)} events through the session...")
    for event in trace.clean:
        for warning in session.ingest(event):
            scheduler.on_warning(warning)

    summary = session.summary()
    print(
        f"\nsession summary: {summary.n_events} events, "
        f"{summary.n_fatal} failures in the prediction period, "
        f"{summary.n_warnings} warnings "
        f"(precision={summary.precision:.2f}, recall={summary.recall:.2f}), "
        f"{len(scheduler.checkpoints)} checkpoints"
    )
    for retrain in session.retrains:
        print(
            f"  retrained at week {retrain.week}: kept "
            f"{retrain.n_kept}/{retrain.n_candidates} rules"
        )

    # Persist the live rule set; a separate predictor process could load it.
    dump_repository(session.repository, "/tmp/repro_rules.json")
    restored = load_repository("/tmp/repro_rules.json")
    print(
        f"\npersisted {len(session.repository)} rules to "
        f"/tmp/repro_rules.json (round-trip check: {len(restored)} loaded)"
    )


if __name__ == "__main__":
    main()
