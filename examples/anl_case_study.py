"""ANL case study: the full paper pipeline from the raw RAS dump.

Reproduces the workflow of Sections 3–5 on the one-rack ANL system —
including the week-50 diagnostics storm: categorize the raw records,
choose the coalescence threshold iteratively, filter, then run the
dynamic framework and compare against a static baseline.

Run with::

    python examples/anl_case_study.py
"""

from repro import (
    ANL_PROFILE,
    DynamicMetaLearningFramework,
    FrameworkConfig,
    GeneratorConfig,
    PreprocessingPipeline,
    generate_log,
    static_initial,
)
from repro.evaluation import mean_accuracy, rolling_metrics
from repro.preprocess import find_threshold
from repro.preprocess.categorizer import Categorizer

# The full ANL raw log is ~5.9 M records; the preprocessing demo uses a
# scaled-down raw dump, while prediction runs on a full-rate trace (the
# learners need the real failure density).
RAW_SCALE = 0.05


def main() -> None:
    trace = generate_log(
        ANL_PROFILE, GeneratorConfig(scale=RAW_SCALE, seed=5, duplicates=True)
    )
    raw = trace.raw
    assert raw is not None
    print(f"raw ANL log: {len(raw)} records over {raw.n_weeks} weeks")

    # --- Section 3: preprocessing -------------------------------------
    categorized = Categorizer(trace.catalog).categorize(raw)
    threshold, sweep = find_threshold(categorized)
    print(
        f"iterative threshold search chose {threshold:.0f}s "
        f"(survivors per threshold: "
        f"{dict(zip((int(t) for t in sweep.thresholds), sweep.totals))})"
    )

    pipeline = PreprocessingPipeline(trace.catalog, threshold=300.0)
    pre = pipeline.run(raw)
    print(
        f"filtering at 300s: {len(raw)} -> {len(pre.clean)} events "
        f"({pre.compression_rate:.1%} compression, "
        f"{pre.categorization.demoted_fatals} fake-fatal records demoted)"
    )

    # The diagnostics storm shows up as a burst of non-fatal KERNEL and
    # MONITOR traffic around week 50.
    storm = ANL_PROFILE.anomalies[0]
    quiet = len(pre.clean.slice_weeks(20, 40)) / 20
    stormy = len(pre.clean.slice_weeks(storm.start_week, storm.end_week)) / (
        storm.end_week - storm.start_week
    )
    print(
        f"diagnostics storm (weeks {storm.start_week}-{storm.end_week}): "
        f"{stormy:.0f} events/week vs {quiet:.0f} in quiet weeks"
    )

    # --- Sections 4-5: prediction -------------------------------------
    # Full-rate logical trace for the prediction study.
    full = generate_log(
        ANL_PROFILE, GeneratorConfig(scale=1.0, seed=5, duplicates=False)
    )
    print(
        f"\nprediction study on the full-rate trace: "
        f"{len(full.clean)} events, {full.n_fatal} failures"
    )
    dynamic = DynamicMetaLearningFramework(
        FrameworkConfig(), catalog=full.catalog
    ).run(full.clean)
    static = DynamicMetaLearningFramework(
        FrameworkConfig(policy=static_initial(6)), catalog=full.catalog
    ).run(full.clean)

    for name, result in (("dynamic-6mo", dynamic), ("static", static)):
        p, r = mean_accuracy(result.weekly)
        n = len(result.weekly)
        lp, lr = mean_accuracy(result.weekly[n // 2 :])
        print(
            f"{name:12s} precision={p:.2f} recall={r:.2f} "
            f"(late half: {lp:.2f}/{lr:.2f})"
        )

    print("\nweekly precision (4-week smoothed), dynamic vs static:")
    dyn_series = rolling_metrics(dynamic.weekly, 4)
    sta_series = rolling_metrics(static.weekly, 4)
    for d, s in list(zip(dyn_series, sta_series))[::8]:
        print(f"  week {d.week:3d}: {d.precision:.2f} vs {s.precision:.2f}")


if __name__ == "__main__":
    main()
