"""Quickstart: train the dynamic meta-learning framework on a synthetic
Blue Gene/L trace and inspect its predictions.

Run with::

    python examples/quickstart.py
"""

from collections import Counter

from repro import (
    DynamicMetaLearningFramework,
    FrameworkConfig,
    GeneratorConfig,
    SDSC_PROFILE,
    generate_log,
)
from repro.evaluation import rolling_metrics


def main() -> None:
    # 1. A 60-week trace of the SDSC system (logical events only — add
    #    duplicates=True to exercise the preprocessing pipeline too).
    trace = generate_log(
        SDSC_PROFILE,
        GeneratorConfig(weeks=60, seed=1, duplicates=False),
    )
    print(
        f"generated {len(trace.clean)} events over "
        f"{trace.clean.n_weeks} weeks ({trace.n_fatal} failures)"
    )

    # 2. The framework with the paper's defaults: 5-minute prediction
    #    window, retraining every 4 weeks on the most recent 6 months,
    #    ROC-revised mixture-of-experts over the three base learners.
    framework = DynamicMetaLearningFramework(FrameworkConfig())
    result = framework.run(trace.clean)

    # 3. Headline accuracy and the expert mix behind it.
    print(
        f"\noverall precision={result.overall.precision:.2f} "
        f"recall={result.overall.recall:.2f} "
        f"({len(result.warnings)} warnings)"
    )
    by_expert = Counter(w.learner for w in result.warnings)
    for learner, count in by_expert.most_common():
        print(f"  {learner:13s} {count} warnings")

    # 4. Weekly accuracy, smoothed over four weeks as in the paper's plots.
    print("\nweek  precision  recall  warnings  failures")
    for wm in rolling_metrics(result.weekly, 4)[::4]:
        print(
            f"{wm.week:4d}  {wm.precision:9.2f}  {wm.recall:6.2f}"
            f"  {wm.n_warnings:8d}  {wm.n_fatal:8d}"
        )

    # 5. What the knowledge repository looked like after the last retrain.
    last = result.retrains[-1]
    print(
        f"\nlast retraining (week {last.week}): trained on weeks "
        f"{last.train_span[0]}-{last.train_span[1]}, kept "
        f"{last.n_kept}/{last.n_candidates} rules "
        f"in {last.generation_seconds + last.revise_seconds:.1f}s"
    )


if __name__ == "__main__":
    main()
