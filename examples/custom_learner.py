"""Extending the framework with a custom base learner.

The paper: "other predictive methods can be easily incorporated into our
framework."  This example adds a *periodicity* learner — it looks for
fatal types that recur with a stable period (wear-out style failures) and
forecasts the next occurrence — registers it, and runs the framework with
a four-expert ensemble.

Run with::

    python examples/custom_learner.py
"""

import numpy as np

from repro import (
    DynamicMetaLearningFramework,
    FrameworkConfig,
    GeneratorConfig,
    SDSC_PROFILE,
    generate_log,
    register_learner,
)
from repro.learners import BaseLearner, DistributionRule
from repro.learners.registry import DEFAULT_LEARNERS


class PeriodicityLearner(BaseLearner):
    """Detects near-periodic failure recurrence.

    For demonstration purposes the rule it emits reuses the
    elapsed-time-trigger shape of :class:`DistributionRule`, with the
    detected period as the quantile time: "if ``period`` seconds have
    passed since the last failure, expect another".
    """

    name = "periodicity"

    def __init__(self, catalog=None, max_cv: float = 0.35, min_samples: int = 12):
        super().__init__(catalog)
        self.max_cv = max_cv
        self.min_samples = min_samples

    def train(self, log, window):
        fatal = log.fatal(self.catalog)
        gaps = fatal.interarrivals()
        gaps = gaps[gaps > window]  # periodic structure beyond burst scale
        if len(gaps) < self.min_samples:
            return []
        cv = float(gaps.std() / gaps.mean())
        if cv > self.max_cv:
            return []  # not periodic enough to bet on
        period = float(np.median(gaps))
        return [
            DistributionRule(
                distribution="periodic",
                params=(period, cv),
                threshold=0.5,
                quantile_time=period,
            )
        ]


def main() -> None:
    register_learner("periodicity", PeriodicityLearner, overwrite=True)

    trace = generate_log(
        SDSC_PROFILE, GeneratorConfig(weeks=50, seed=3, duplicates=False)
    )

    baseline = DynamicMetaLearningFramework(
        FrameworkConfig(), catalog=trace.catalog
    ).run(trace.clean)
    extended = DynamicMetaLearningFramework(
        FrameworkConfig(learners=DEFAULT_LEARNERS + ("periodicity",)),
        catalog=trace.catalog,
    ).run(trace.clean)

    print("three-expert ensemble:",
          f"precision={baseline.overall.precision:.2f}",
          f"recall={baseline.overall.recall:.2f}")
    print("four-expert ensemble: ",
          f"precision={extended.overall.precision:.2f}",
          f"recall={extended.overall.recall:.2f}")

    # Whether the extra expert earned its keep is workload-dependent: the
    # reviser scores its rules on the training data like everyone else's.
    fired = sum(1 for w in extended.warnings if w.learner == "distribution")
    print(f"time-triggered warnings in the extended run: {fired}")


if __name__ == "__main__":
    main()
